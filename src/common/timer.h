#ifndef ORPHEUS_COMMON_TIMER_H_
#define ORPHEUS_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace orpheus {

/// Wall-clock stopwatch used by benches to report paper-style timings.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed whole microseconds; the unit used by the metrics layer.
  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// An absolute point in time a bounded operation must finish by. The one
/// sanctioned carrier of steady_clock arithmetic outside common/ (the
/// tools/lint.py raw-clock rule): network calls, lock waits, and retry
/// loops pass a Deadline down instead of juggling timeouts, so nested
/// operations naturally share one budget.
class Deadline {
 public:
  /// Never expires. remaining() saturates at a large sentinel.
  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now (clamped at >= 0).
  static Deadline AfterMillis(int64_t ms) {
    Deadline d;
    d.infinite_ = false;
    d.when_ = Clock::now() + std::chrono::milliseconds(ms < 0 ? 0 : ms);
    return d;
  }

  bool is_infinite() const { return infinite_; }

  bool expired() const {
    return !infinite_ && Clock::now() >= when_;
  }

  /// Time left, as a duration; kForeverNanos worth for infinite deadlines
  /// and zero once expired. Safe to hand straight to CondVar::WaitFor.
  std::chrono::nanoseconds remaining() const {
    if (infinite_) return std::chrono::nanoseconds(kForeverNanos);
    auto left = std::chrono::duration_cast<std::chrono::nanoseconds>(
        when_ - Clock::now());
    return left.count() < 0 ? std::chrono::nanoseconds(0) : left;
  }

  /// Time left in whole milliseconds (0 when expired); poll(2)-friendly.
  int64_t remaining_millis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(remaining())
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  // ~292 years: effectively forever, but arithmetic on it cannot overflow
  // a signed 64-bit nanosecond count when added to now().
  static constexpr int64_t kForeverNanos = int64_t{1} << 62;

  Deadline() = default;

  bool infinite_ = true;
  Clock::time_point when_{};
};

}  // namespace orpheus

#endif  // ORPHEUS_COMMON_TIMER_H_
