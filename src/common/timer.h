#ifndef ORPHEUS_COMMON_TIMER_H_
#define ORPHEUS_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace orpheus {

/// Wall-clock stopwatch used by benches to report paper-style timings.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed whole microseconds; the unit used by the metrics layer.
  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace orpheus

#endif  // ORPHEUS_COMMON_TIMER_H_
