#include "common/thread_pool.h"

#include <algorithm>

#include "common/env.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace orpheus {

namespace {

// Set while a thread is executing inside WorkerLoop; lets nested parallel
// constructs detect that they are already on a pool worker.
thread_local const ThreadPool* g_worker_of = nullptr;

int DegreeFromEnv() {
  unsigned hw = std::thread::hardware_concurrency();
  const int fallback = hw >= 1 ? static_cast<int>(hw) : 1;
  // Checked parse: "8abc", "-3", or "0" fall back to hardware concurrency
  // with a warning instead of silently configuring a nonsense degree.
  return static_cast<int>(
      ParseEnvInt("ORPHEUS_THREADS", fallback, 1, 4096));
}

}  // namespace

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(DegreeFromEnv());
  return *pool;
}

ThreadPool::ThreadPool(int degree) { StartWorkers(std::max(1, degree)); }

ThreadPool::~ThreadPool() { StopWorkers(); }

void ThreadPool::SetDegree(int degree) {
  degree = std::max(1, degree);
  if (degree == degree_) return;
  StopWorkers();
  StartWorkers(degree);
}

bool ThreadPool::InWorker() const { return g_worker_of == this; }

void ThreadPool::StartWorkers(int degree) {
  degree_ = degree;
  {
    MutexLock lock(&mu_);
    stopping_ = false;
  }
  // The submitting thread helps in Wait(), so degree d needs d-1 workers.
  workers_.reserve(degree - 1);
  for (int i = 0; i < degree - 1; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void ThreadPool::StopWorkers() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::WorkerLoop(int worker_index) {
  g_worker_of = this;
  // Named threads show up as their own labeled rows in trace dumps
  // (chrome://tracing / Perfetto); registration is cheap and lazy.
  trace::SetCurrentThreadName(StrFormat("pool-worker-%d", worker_index));
  for (;;) {
    Task task;
    size_t depth = 0;
    {
      MutexLock lock(&mu_);
      // Explicit predicate loop (the analysis cannot see through a lambda)
      // with a bounded wait: even a missed notify during shutdown cannot
      // strand a worker past one timeout tick.
      while (!stopping_ && queue_.empty()) {
        work_cv_.WaitFor(&mu_, std::chrono::milliseconds(50));
      }
      if (queue_.empty()) return;  // stopping_
      task = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
    }
    ORPHEUS_TRACE_COUNTER("pool.queue_depth", depth);
    task.fn();
    FinishTask(task.group);
    ORPHEUS_COUNTER_ADD("pool.tasks_executed", 1);
  }
}

bool ThreadPool::RunOneTask() {
  Task task;
  size_t depth = 0;
  {
    MutexLock lock(&mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    depth = queue_.size();
  }
  ORPHEUS_TRACE_COUNTER("pool.queue_depth", depth);
  task.fn();
  FinishTask(task.group);
  return true;
}

void ThreadPool::FinishTask(TaskGroup* group) {
  // Notify while still holding the group's mutex: the moment a waiter can
  // observe pending_ == 0 it may destroy the group, so the condition
  // variable must not be touched after the lock is released.
  MutexLock lock(&group->mu_);
  if (--group->pending_ == 0) group->done_cv_.NotifyAll();
}

ThreadPool::TaskGroup::TaskGroup(ThreadPool* pool) : pool_(pool) {}

ThreadPool::TaskGroup::~TaskGroup() { Wait(); }

void ThreadPool::TaskGroup::Submit(std::function<void()> fn) {
  // Serial pool or nested fan-out: run right here, in submission order.
  if (pool_->degree_ <= 1 || pool_->InWorker()) {
    ORPHEUS_COUNTER_ADD("pool.tasks_inline", 1);
    fn();
    return;
  }
  ORPHEUS_COUNTER_ADD("pool.tasks_queued", 1);
  {
    MutexLock lock(&mu_);
    ++pending_;
  }
  size_t depth = 0;
  {
    MutexLock lock(&pool_->mu_);
    pool_->queue_.push_back({std::move(fn), this});
    depth = pool_->queue_.size();
  }
  ORPHEUS_TRACE_COUNTER("pool.queue_depth", depth);
  pool_->work_cv_.NotifyOne();
}

void ThreadPool::TaskGroup::Wait() {
  // Help drain the pool while our tasks are outstanding. We may execute
  // tasks belonging to other groups; that only speeds them up.
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (pending_ == 0) return;
    }
    if (!pool_->RunOneTask()) {
      // Out of tasks to steal: block until our own finish. The wait time is
      // the pool's idle tail — the imbalance the chunking tries to smooth.
      Timer wait_timer;
      MutexLock lock(&mu_);
      while (pending_ != 0) done_cv_.Wait(&mu_);
      ORPHEUS_HISTOGRAM_RECORD("pool.wait_us", wait_timer.ElapsedMicros());
      return;
    }
    ORPHEUS_COUNTER_ADD("pool.tasks_helped", 1);
  }
}

DedicatedThread::DedicatedThread(std::string name, std::function<void()> fn)
    : thread_([name = std::move(name), fn = std::move(fn)] {
        trace::SetCurrentThreadName(name);
        fn();
      }) {}

DedicatedThread::~DedicatedThread() { Join(); }

DedicatedThread& DedicatedThread::operator=(DedicatedThread&& other) noexcept {
  Join();
  thread_ = std::move(other.thread_);
  return *this;
}

void DedicatedThread::Join() {
  if (thread_.joinable()) thread_.join();
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  const size_t n = end - begin;
  grain = std::max<size_t>(1, grain);
  if (degree_ <= 1 || InWorker() || n <= grain) {
    fn(begin, end);
    return;
  }
  // At most 4 chunks per thread keeps scheduling overhead bounded while
  // still smoothing imbalance; chunking is a pure function of the inputs so
  // results are stitched identically at every degree.
  const size_t max_chunks = static_cast<size_t>(degree_) * 4;
  const size_t num_chunks = std::min((n + grain - 1) / grain, max_chunks);
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  TaskGroup group(this);
  for (size_t lo = begin; lo < end; lo += chunk) {
    const size_t hi = std::min(lo + chunk, end);
    group.Submit([&fn, lo, hi] { fn(lo, hi); });
  }
  group.Wait();
}

}  // namespace orpheus
