#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/env.h"
#include "common/log.h"
#include "common/string_util.h"

namespace orpheus {

namespace metrics_internal {
bool ReadMetricsEnv() { return ParseEnvBool("ORPHEUS_METRICS", true); }
}  // namespace metrics_internal

namespace {

// Upper edge of a histogram bucket: the largest value with that bit width.
uint64_t BucketUpperEdge(int bucket) {
  if (bucket == 0) return 0;
  if (bucket >= 64) return ~0ull;
  return (1ull << bucket) - 1;
}

uint64_t PercentileFromBuckets(const uint64_t* buckets, uint64_t count,
                               double pct) {
  if (count == 0) return 0;
  // Rank of the requested percentile, 1-based, nearest-rank method:
  // ceil(pct * count), so p99 of 5 samples is the 5th, not the 4th.
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(pct * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) return BucketUpperEdge(b);
  }
  return BucketUpperEdge(Histogram::kNumBuckets - 1);
}

void AppendHistogramJson(std::string& out, const Histogram::Snapshot& h) {
  out += "{\"count\":" + std::to_string(h.count);
  out += ",\"sum\":" + std::to_string(h.sum);
  out += ",\"min\":" + std::to_string(h.min);
  out += ",\"max\":" + std::to_string(h.max);
  out += ",\"p50\":" + std::to_string(h.p50);
  out += ",\"p95\":" + std::to_string(h.p95);
  out += ",\"p99\":" + std::to_string(h.p99);
  out += "}";
}

}  // namespace

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  uint64_t buckets[kNumBuckets];
  for (int b = 0; b < kNumBuckets; ++b) {
    buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = snap.count == 0 ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  snap.p50 = PercentileFromBuckets(buckets, snap.count, 0.50);
  snap.p95 = PercentileFromBuckets(buckets, snap.count, 0.95);
  snap.p99 = PercentileFromBuckets(buckets, snap.count, 0.99);
  // Percentile estimates are bucket upper edges; clamp to the observed
  // range so e.g. a single-value histogram reports p50 == that value's
  // bucket edge but never exceeds max.
  snap.p50 = std::clamp(snap.p50, snap.min, snap.max);
  snap.p95 = std::clamp(snap.p95, snap.min, snap.max);
  snap.p99 = std::clamp(snap.p99, snap.min, snap.max);
  return snap;
}

void Histogram::Reset() {
  for (int b = 0; b < kNumBuckets; ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton (same pattern as ThreadPool::Global): instrumentation
  // sites cache references into it, so it must outlive every static dtor.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Shard& shard = ShardOf(name);
  MutexLock lock(&shard.mu);
  auto it = shard.counters.find(name);
  if (it == shard.counters.end()) {
    it = shard.counters
             .emplace(std::piecewise_construct, std::forward_as_tuple(name),
                      std::forward_as_tuple())
             .first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Shard& shard = ShardOf(name);
  MutexLock lock(&shard.mu);
  auto it = shard.gauges.find(name);
  if (it == shard.gauges.end()) {
    it = shard.gauges
             .emplace(std::piecewise_construct, std::forward_as_tuple(name),
                      std::forward_as_tuple())
             .first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  Shard& shard = ShardOf(name);
  MutexLock lock(&shard.mu);
  auto it = shard.histograms.find(name);
  if (it == shard.histograms.end()) {
    it = shard.histograms.emplace(std::piecewise_construct,
                                  std::forward_as_tuple(name),
                                  std::forward_as_tuple())
             .first;
  }
  return it->second;
}

void MetricsRegistry::RecordSpan(std::string_view path, uint64_t elapsed_us,
                                 uint64_t child_us) {
  Shard& shard = ShardOf(path);
  MutexLock lock(&shard.mu);
  auto it = shard.spans.find(path);
  if (it == shard.spans.end()) {
    it = shard.spans.emplace(std::piecewise_construct,
                             std::forward_as_tuple(path),
                             std::forward_as_tuple())
             .first;
  }
  SpanStats& stats = it->second;
  stats.count += 1;
  stats.total_us += elapsed_us;
  stats.child_us += child_us;
  stats.latency_us.Record(elapsed_us);
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot snap;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    for (const auto& [name, c] : shard.counters) {
      snap.counters.emplace_back(name, c.value());
    }
    for (const auto& [name, g] : shard.gauges) {
      snap.gauges.emplace_back(name, g.value());
    }
    for (const auto& [name, h] : shard.histograms) {
      snap.histograms.emplace_back(name, h.TakeSnapshot());
    }
    for (const auto& [path, s] : shard.spans) {
      Snapshot::Span span;
      span.path = path;
      span.count = s.count;
      span.total_us = s.total_us;
      span.self_us = s.total_us >= s.child_us ? s.total_us - s.child_us : 0;
      span.latency_us = s.latency_us.TakeSnapshot();
      snap.spans.push_back(std::move(span));
    }
  }
  auto by_first = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_first);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_first);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_first);
  std::sort(snap.spans.begin(), snap.spans.end(),
            [](const Snapshot::Span& a, const Snapshot::Span& b) {
              return a.path < b.path;
            });
  return snap;
}

void MetricsRegistry::Reset() {
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    for (auto& [name, c] : shard.counters) c.Reset();
    for (auto& [name, g] : shard.gauges) g.Reset();
    for (auto& [name, h] : shard.histograms) h.Reset();
    for (auto& [path, s] : shard.spans) {
      s.count = 0;
      s.total_us = 0;
      s.child_us = 0;
      s.latency_us.Reset();
    }
  }
}

std::string MetricsRegistry::ToText() const {
  Snapshot snap = TakeSnapshot();
  std::ostringstream out;
  if (!snap.spans.empty()) {
    out << "spans:\n";
    for (const auto& s : snap.spans) {
      out << "  " << s.path << "  count=" << s.count
          << " total_us=" << s.total_us << " self_us=" << s.self_us
          << " p50=" << s.latency_us.p50 << " p95=" << s.latency_us.p95
          << " p99=" << s.latency_us.p99 << "\n";
    }
  }
  if (!snap.counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : snap.counters) {
      out << "  " << name << " = " << value << "\n";
    }
  }
  if (!snap.gauges.empty()) {
    out << "gauges:\n";
    for (const auto& [name, value] : snap.gauges) {
      out << "  " << name << " = " << value << "\n";
    }
  }
  if (!snap.histograms.empty()) {
    out << "histograms:\n";
    for (const auto& [name, h] : snap.histograms) {
      out << "  " << name << "  count=" << h.count << " sum=" << h.sum
          << " min=" << h.min << " max=" << h.max << " p50=" << h.p50
          << " p95=" << h.p95 << " p99=" << h.p99 << "\n";
    }
  }
  std::string text = out.str();
  if (text.empty()) text = "(no metrics recorded)\n";
  return text;
}

std::string MetricsRegistry::ToJson() const {
  Snapshot snap = TakeSnapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonEscaped(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonEscaped(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonEscaped(out, name);
    out += ": ";
    AppendHistogramJson(out, h);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"spans\": {";
  first = true;
  for (const auto& s : snap.spans) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonEscaped(out, s.path);
    out += ": {\"count\":" + std::to_string(s.count);
    out += ",\"total_us\":" + std::to_string(s.total_us);
    out += ",\"self_us\":" + std::to_string(s.self_us);
    out += ",\"latency_us\":";
    AppendHistogramJson(out, s.latency_us);
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

thread_local TraceSpan* TraceSpan::current_ = nullptr;

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const uint64_t elapsed = timer_.ElapsedMicros();
  trace::EmitEnd(name_);
  current_ = parent_;
  if (parent_ != nullptr) parent_->child_us_ += elapsed;
  MetricsRegistry::Global().RecordSpan(path(), elapsed, child_us_);
  const uint64_t slow_ms = log::SlowOpThresholdMs();
  if (slow_ms > 0) {
    if (parent_ != nullptr) {
      parent_->AddChildTime(name_, elapsed);
    } else if (elapsed >= slow_ms * 1000) {
      LogSlowOp(elapsed);
    }
  }
}

void TraceSpan::AddChildTime(const char* name, uint64_t elapsed_us) {
  // Merge by name: direct children at one site are few, so a linear scan
  // over <= kMaxChildren entries beats any map. strcmp, not pointer
  // compare — identical literals in different TUs may not be pooled.
  for (size_t i = 0; i < num_children_; ++i) {
    if (children_[i].name == name ||
        std::strcmp(children_[i].name, name) == 0) {
      children_[i].total_us += elapsed_us;
      children_[i].count += 1;
      return;
    }
  }
  if (num_children_ < kMaxChildren) {
    children_[num_children_++] = {name, elapsed_us, 1};
  } else {
    // Overflow: fold into the last slot so no time is silently dropped.
    children_[kMaxChildren - 1].total_us += elapsed_us;
    children_[kMaxChildren - 1].count += 1;
  }
}

void TraceSpan::LogSlowOp(uint64_t elapsed_us) const {
  uint64_t child_total = 0;
  for (size_t i = 0; i < num_children_; ++i) {
    child_total += children_[i].total_us;
  }
  std::vector<log::Field> fields;
  fields.reserve(num_children_ + 3);
  fields.emplace_back("op", path());
  fields.emplace_back("total_ms", elapsed_us / 1000);
  fields.emplace_back("self_ms",
                      (elapsed_us >= child_total ? elapsed_us - child_total
                                                 : 0) /
                          1000);
  for (size_t i = 0; i < num_children_; ++i) {
    fields.emplace_back(std::string(children_[i].name) + "_ms",
                        children_[i].total_us / 1000);
  }
  log::WriteV(log::Level::kWarn, __FILE__, __LINE__, "slow operation",
              fields);
}

}  // namespace orpheus
