#ifndef ORPHEUS_COMMON_TRACE_H_
#define ORPHEUS_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

/// Event tracing: the timeline companion to the aggregate metrics layer
/// (DESIGN.md §9).
///
/// Where common/metrics.h answers "how long does pstore.build take on
/// average", this layer answers "what did thread 3 run between 120ms and
/// 140ms, and why was the pool idle". Every thread that emits an event owns
/// a fixed-capacity ring buffer of {timestamp, name, arg, type} records;
/// the existing ORPHEUS_TRACE_SPAN sites feed begin/end pairs into it, the
/// thread pool feeds queue-depth counter events, and a registry-driven
/// snapshot merges all rings into Chrome trace-event JSON that loads in
/// chrome://tracing or https://ui.perfetto.dev.
///
/// Cost model: when tracing is inactive (the default), every emit site is
/// one relaxed atomic load and a predictable branch — cheap enough to leave
/// compiled into release binaries. When active, an emit is a clock read
/// plus four plain stores and one release store into the calling thread's
/// ring; no locks, no allocation after the ring exists. Rings overwrite
/// their oldest events on wrap, so a trace is always "the most recent
/// N events per thread" (N = ORPHEUS_TRACE_BUFFER, default 16384).
///
/// Concurrency contract: each ring has exactly one writer (its owner
/// thread). Snapshots are taken at quiescent points (after TaskGroup::Wait,
/// at bench exit, between CLI commands), where every prior emit
/// happens-before the read; snapshotting while writers are actively
/// emitting yields a best-effort trace and may observe torn events on a
/// ring that wraps mid-read — acceptable for a flight recorder, never UB
/// worse than a garbled event.
///
/// Building with -DORPHEUS_METRICS=OFF compiles every emit site down to
/// nothing (the same switch that kills the metrics macros); Start() then
/// records nothing and dumps are empty.

#ifndef ORPHEUS_METRICS_ENABLED
#define ORPHEUS_METRICS_ENABLED 1
#endif

namespace orpheus::trace {

enum class EventType : uint8_t {
  kBegin = 0,    // span opened (name = span name, arg unused)
  kEnd = 1,      // span closed (name = span name, arg unused)
  kInstant = 2,  // point event (arg = user payload)
  kCounter = 3,  // sampled value (arg = the value), e.g. pool.queue_depth
};

/// One ring slot. `name` must point at storage that outlives the trace —
/// in practice a string literal at the emit site (the "name handle": 8
/// bytes, no copy, no hashing).
struct Event {
  uint64_t ts_us = 0;        // microseconds since the process trace epoch
  const char* name = nullptr;
  uint64_t arg = 0;
  EventType type = EventType::kInstant;
};

namespace internal {
/// Global on/off flag, flipped by Start()/Stop() (and ORPHEUS_TRACE=1 at
/// process start). Read on every emit fast path, hence relaxed + inline.
extern std::atomic<bool> g_active;
void EmitImpl(EventType type, const char* name, uint64_t arg);
}  // namespace internal

/// True while events are being recorded.
inline bool IsActive() {
#if ORPHEUS_METRICS_ENABLED
  return internal::g_active.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Begin recording. Events emitted before Start() are not retroactively
/// recovered; call Clear() first for a fresh recording. Also applied at
/// process start when the ORPHEUS_TRACE environment variable is truthy.
void Start();

/// Stop recording. Buffered events stay readable until Clear().
void Stop();

/// Drop every buffered event on every thread (ring capacities are
/// re-applied, so a preceding SetRingCapacity takes effect). Must be called
/// at a quiescent point.
void Clear();

/// Per-thread ring capacity in events for rings created or cleared from now
/// on. Defaults to ORPHEUS_TRACE_BUFFER (16384). Values are clamped to
/// [16, 1<<22]. Intended for tests and tools; call Clear() afterwards to
/// re-size existing rings.
void SetRingCapacity(size_t capacity);
size_t RingCapacity();

/// Name the calling thread in trace output ("main", "pool-worker-3").
/// Registers the thread with the trace registry; cheap, allocates the ring
/// lazily on first emit.
void SetCurrentThreadName(const std::string& name);

/// Emit fast paths: one relaxed load + branch when inactive.
inline void EmitBegin(const char* name) {
#if ORPHEUS_METRICS_ENABLED
  if (IsActive()) internal::EmitImpl(EventType::kBegin, name, 0);
#endif
}
inline void EmitEnd(const char* name) {
#if ORPHEUS_METRICS_ENABLED
  if (IsActive()) internal::EmitImpl(EventType::kEnd, name, 0);
#endif
}
inline void EmitInstant(const char* name, uint64_t arg = 0) {
#if ORPHEUS_METRICS_ENABLED
  if (IsActive()) internal::EmitImpl(EventType::kInstant, name, arg);
#endif
}
inline void EmitCounter(const char* name, uint64_t value) {
#if ORPHEUS_METRICS_ENABLED
  if (IsActive()) internal::EmitImpl(EventType::kCounter, name, value);
#endif
}

/// The merged view of every thread's ring, oldest-first per thread.
struct ThreadTrace {
  uint32_t tid = 0;        // small sequential id, assigned at registration
  std::string name;        // from SetCurrentThreadName, or "thread-<tid>"
  std::vector<Event> events;
};

/// Copy out every ring (quiescent point; see the concurrency contract).
/// Threads are ordered by tid; events within a thread are in emit order.
std::vector<ThreadTrace> SnapshotAll();

/// Render the snapshot as Chrome trace-event JSON ("traceEvents" array,
/// complete X events for matched begin/end pairs, B events for still-open
/// spans, i/C for instants and counters, M metadata rows naming every
/// thread). Loads directly in chrome://tracing and Perfetto.
std::string ToChromeJson();

/// Total buffered events across all rings (post-wrap, i.e. what a dump
/// would contain).
size_t NumBufferedEvents();

/// Per-stage profile of the buffered trace: one row per slash-joined span
/// path with count, total, self and exact p95 wall time, indented as a
/// tree. Unlike the metrics registry (process-lifetime aggregates), this
/// covers exactly the events in the buffer — the operation just traced.
std::string ProfileReport();

}  // namespace orpheus::trace

// Instrumentation macros, mirroring the ORPHEUS_COUNTER_ADD family: sites
// compile out entirely under -DORPHEUS_METRICS=OFF.
#if ORPHEUS_METRICS_ENABLED
/// Mark a point in time (chrome "instant" event) with a 64-bit payload.
#define ORPHEUS_TRACE_INSTANT(name, arg) \
  ::orpheus::trace::EmitInstant(name, static_cast<uint64_t>(arg))
/// Record a sampled value (chrome "counter" track), e.g. queue depth.
#define ORPHEUS_TRACE_COUNTER(name, value) \
  ::orpheus::trace::EmitCounter(name, static_cast<uint64_t>(value))
#else
#define ORPHEUS_TRACE_INSTANT(name, arg) \
  do {                                   \
  } while (0)
#define ORPHEUS_TRACE_COUNTER(name, value) \
  do {                                     \
  } while (0)
#endif

#endif  // ORPHEUS_COMMON_TRACE_H_
