#ifndef ORPHEUS_COMMON_FAILPOINT_H_
#define ORPHEUS_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace orpheus::failpoint {

/// Fault-injection framework in the spirit of RocksDB's fault-injection
/// filesystem: named sites (`ORPHEUS_FAILPOINT("storage.wal.append.sync")`)
/// are threaded through every write/fsync/rename in the storage layer.
/// Tests (or the ORPHEUS_FAILPOINTS environment variable) arm a site to
/// either return an error Status from the enclosing function or terminate
/// the process mid-operation, simulating a crash.
///
/// Sites compile down to a single relaxed atomic load when nothing is
/// armed, and to nothing at all under -DORPHEUS_FAILPOINTS=OFF.

enum class Action {
  kError,  // the site returns Status::Internal("failpoint <name> fired...")
  kAbort,  // the process terminates immediately via _exit (no cleanup, no
           // buffer flush — a faithful crash simulation)
  kDelay,  // the site sleeps `delay_ms`, then proceeds normally (simulates
           // a slow disk / stalled peer rather than a hard failure)
};

struct Info {
  std::string name;
  Action action = Action::kError;
  int trigger_at = 1;
  bool once = false;
  uint64_t hits = 0;     // times the site was reached while armed
  bool expired = false;  // a `once` failpoint that already fired
  double probability = 1.0;  // chance an eligible hit actually fires
  int delay_ms = 0;          // sleep duration for kDelay
};

/// Arm `name`. `trigger_at` is the 1-based hit ordinal at which the
/// failpoint first fires (1 = the next hit). With `once`, the failpoint
/// fires exactly once and then expires; otherwise it keeps firing on every
/// hit from `trigger_at` on (moot for kAbort, which never returns).
/// `probability` < 1 makes each eligible hit fire with that chance, drawn
/// from the registry's seeded RNG (ORPHEUS_FAILPOINT_SEED) so chaos runs
/// replay identically. `delay_ms` is the sleep duration for kDelay.
void Arm(const std::string& name, Action action, int trigger_at = 1,
         bool once = false, double probability = 1.0, int delay_ms = 50);

/// Re-seed the probabilistic-firing RNG (normally seeded once from
/// ORPHEUS_FAILPOINT_SEED, default 1). Tests call this between chaos runs
/// to replay the exact same firing sequence.
void Reseed(uint64_t seed);

/// Disarm one site / all sites. Disarming an unknown name is a no-op.
void Disarm(const std::string& name);
void DisarmAll();

/// Times the armed (or expired) site `name` was reached; 0 if never armed.
uint64_t HitCount(const std::string& name);

/// Every currently armed or expired failpoint.
std::vector<Info> List();

/// Parse and arm an ORPHEUS_FAILPOINTS spec: `;`- or `,`-separated entries
/// of the form `name=action[:option]...` (grammar in DESIGN.md §14.6) with
/// actions error|abort|crash|delay|off and options
///   <nth>   fire from the nth hit on (1-based; `once` limits it to that hit)
///   once    fire exactly once, then expire
///   p<f>    fire each eligible hit with probability f in [0,1], drawn from
///           the ORPHEUS_FAILPOINT_SEED-seeded RNG (reproducible chaos)
///   <n>ms   sleep duration for the delay action (default 50ms)
/// e.g.
///   "storage.wal.append.sync=abort"
///   "io.write=error:3"           (fire on the 3rd hit and every hit after)
///   "io.sync=error:2:once"      (fire exactly once, on the 2nd hit)
///   "net.server.recv=error:p0.05"  (drop ~5% of reads, deterministically)
///   "net.client.send=delay:100ms"  (stall every send 100ms)
/// Returns InvalidArgument naming the bad entry on malformed input.
Status ArmFromSpec(std::string_view spec);

namespace internal {
extern std::atomic<int> g_armed_count;

/// Consume one hit of `name` if it is armed: returns the action to take
/// when the site should fire now, nullopt otherwise. Exposed for sites
/// with bespoke firing behavior (e.g. file_util's partial-write site,
/// which writes half the buffer before firing).
std::optional<Action> ConsumeHit(const char* name);

/// Standard site behavior: consume a hit; on kAbort terminate the process,
/// on kError return the injected Status, otherwise return OK.
Status Fire(const char* name);

/// Terminate the process the way a crash would: no atexit handlers, no
/// stream flushing. Out-of-line so the macro does not pull in <unistd.h>.
[[noreturn]] void CrashNow(const char* name);
}  // namespace internal

/// True when at least one failpoint is armed (fast path for sites).
inline bool AnyArmed() {
  return internal::g_armed_count.load(std::memory_order_relaxed) > 0;
}

}  // namespace orpheus::failpoint

#if ORPHEUS_FAILPOINTS_ENABLED
/// Failure-injection site. Must appear in a function returning Status or
/// Result<T>: when armed in kError mode it returns the injected error;
/// in kAbort mode the process dies here.
#define ORPHEUS_FAILPOINT(name)                                             \
  do {                                                                      \
    if (::orpheus::failpoint::AnyArmed()) {                                 \
      ::orpheus::Status _fp_status =                                        \
          ::orpheus::failpoint::internal::Fire(name);                       \
      if (!_fp_status.ok()) return _fp_status;                              \
    }                                                                       \
  } while (0)
#else
#define ORPHEUS_FAILPOINT(name) \
  do {                          \
  } while (0)
#endif

#endif  // ORPHEUS_COMMON_FAILPOINT_H_
