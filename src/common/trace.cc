#include "common/trace.h"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "common/env.h"
#include "common/sync.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"

namespace orpheus::trace {

namespace internal {
std::atomic<bool> g_active{false};
}  // namespace internal

namespace {

constexpr size_t kMinRingCapacity = 16;
constexpr size_t kMaxRingCapacity = size_t{1} << 22;

/// Microseconds since the process trace epoch (first use). One steady
/// clock shared by every thread, so cross-thread timestamps are
/// comparable and per-thread sequences are monotone.
uint64_t NowMicros() {
  static const Timer* epoch = new Timer();
  return epoch->ElapsedMicros();
}

/// Single-producer ring: the owner thread writes slots and publishes with a
/// release store of the head; snapshot readers acquire-load the head and
/// copy the newest min(head, capacity) slots. head counts events ever
/// emitted, so wraparound keeps the newest events by construction.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity) : slots_(capacity) {}

  void Emit(EventType type, const char* name, uint64_t arg) {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    Event& slot = slots_[h % slots_.size()];
    slot.ts_us = NowMicros();
    slot.name = name;
    slot.arg = arg;
    slot.type = type;
    head_.store(h + 1, std::memory_order_release);
  }

  std::vector<Event> Snapshot() const {
    const uint64_t h = head_.load(std::memory_order_acquire);
    const uint64_t cap = slots_.size();
    const uint64_t lo = h > cap ? h - cap : 0;
    std::vector<Event> out;
    out.reserve(static_cast<size_t>(h - lo));
    for (uint64_t i = lo; i < h; ++i) {
      out.push_back(slots_[i % cap]);
    }
    return out;
  }

  size_t size() const {
    const uint64_t h = head_.load(std::memory_order_acquire);
    return static_cast<size_t>(std::min<uint64_t>(h, slots_.size()));
  }

 private:
  std::vector<Event> slots_;
  std::atomic<uint64_t> head_{0};
};

struct ThreadRec {
  uint32_t tid = 0;
  std::string name;  // written/read only under the registry's mu_
  // Allocated on the first emit, so naming a thread (every pool worker
  // does) costs nothing until it actually traces. The owner thread
  // publishes with a release store *without* the registry lock; snapshot
  // readers acquire-load under it. (This used to be a plain unique_ptr:
  // the unlocked owner-side assignment raced the locked readers.)
  std::atomic<TraceRing*> ring{nullptr};
};

/// Owns one ThreadRec per thread that ever emitted or named itself.
/// Records are never removed — a worker that exits (SetDegree) leaves its
/// events readable — so the thread-local cache below stays valid for the
/// thread's lifetime. Leaked, like the MetricsRegistry/ThreadPool
/// singletons, so instrumentation in static destructors stays safe.
class TraceRegistry {
 public:
  static TraceRegistry& Global() {
    static TraceRegistry* registry = new TraceRegistry();
    return *registry;
  }

  ThreadRec* CurrentThreadRec() {
    thread_local ThreadRec* rec = nullptr;
    if (rec == nullptr) {
      MutexLock lock(&mu_);
      threads_.push_back(std::make_unique<ThreadRec>());
      rec = threads_.back().get();
      rec->tid = static_cast<uint32_t>(threads_.size() - 1);
      rec->name = "thread-" + std::to_string(rec->tid);
    }
    return rec;
  }

  TraceRing* CurrentThreadRing() {
    ThreadRec* rec = CurrentThreadRec();
    TraceRing* ring = rec->ring.load(std::memory_order_acquire);
    if (ring == nullptr) {
      ring = new TraceRing(capacity());
      rec->ring.store(ring, std::memory_order_release);
    }
    return ring;
  }

  void SetCapacity(size_t capacity) {
    capacity = std::clamp(capacity, kMinRingCapacity, kMaxRingCapacity);
    capacity_.store(capacity, std::memory_order_relaxed);
  }

  size_t capacity() {
    size_t cap = capacity_.load(std::memory_order_relaxed);
    if (cap == 0) {
      // First use: ORPHEUS_TRACE_BUFFER, clamped like SetRingCapacity.
      cap = static_cast<size_t>(
          ParseEnvInt("ORPHEUS_TRACE_BUFFER", 16384,
                      static_cast<int64_t>(kMinRingCapacity),
                      static_cast<int64_t>(kMaxRingCapacity)));
      capacity_.store(cap, std::memory_order_relaxed);
    }
    return cap;
  }

  /// Only safe while no other thread is emitting (the bench/test contract):
  /// replacing a ring frees the buffer an emitter could be writing.
  void Clear() {
    MutexLock lock(&mu_);
    const size_t cap = capacity();
    for (auto& rec : threads_) {
      TraceRing* old = rec->ring.load(std::memory_order_acquire);
      if (old != nullptr) {
        rec->ring.store(new TraceRing(cap), std::memory_order_release);
        delete old;
      }
    }
  }

  std::vector<ThreadTrace> SnapshotAll() {
    MutexLock lock(&mu_);
    std::vector<ThreadTrace> out;
    out.reserve(threads_.size());
    for (const auto& rec : threads_) {
      ThreadTrace t;
      t.tid = rec->tid;
      t.name = rec->name;
      const TraceRing* ring = rec->ring.load(std::memory_order_acquire);
      if (ring != nullptr) t.events = ring->Snapshot();
      out.push_back(std::move(t));
    }
    return out;
  }

  size_t NumBufferedEvents() {
    MutexLock lock(&mu_);
    size_t n = 0;
    for (const auto& rec : threads_) {
      const TraceRing* ring = rec->ring.load(std::memory_order_acquire);
      if (ring != nullptr) n += ring->size();
    }
    return n;
  }

  void NameCurrentThread(const std::string& name) {
    ThreadRec* rec = CurrentThreadRec();
    MutexLock lock(&mu_);
    rec->name = name;
  }

 private:
  // Guards the threads_ vector and per-thread names, never the rings (they
  // are single-producer; snapshot readers synchronize on the ring head).
  Mutex mu_{"trace.registry", lock_rank::kTraceRegistry};
  std::vector<std::unique_ptr<ThreadRec>> threads_ ORPHEUS_GUARDED_BY(mu_);
  std::atomic<size_t> capacity_{0};
};

#if ORPHEUS_METRICS_ENABLED
// ORPHEUS_TRACE=1 starts recording before main() so short-lived tools and
// benches can be traced without code changes.
const bool g_env_applied = [] {
  if (ParseEnvBool("ORPHEUS_TRACE", false)) Start();
  return true;
}();
#endif

/// A begin event waiting for its end during export.
struct OpenSpan {
  const char* name;
  uint64_t ts_us;
};

}  // namespace

namespace internal {

void EmitImpl(EventType type, const char* name, uint64_t arg) {
  TraceRegistry::Global().CurrentThreadRing()->Emit(type, name, arg);
}

}  // namespace internal

void Start() {
  NowMicros();  // pin the epoch no later than the first Start
  internal::g_active.store(true, std::memory_order_relaxed);
}

void Stop() { internal::g_active.store(false, std::memory_order_relaxed); }

void Clear() { TraceRegistry::Global().Clear(); }

void SetRingCapacity(size_t capacity) {
  TraceRegistry::Global().SetCapacity(capacity);
}

size_t RingCapacity() { return TraceRegistry::Global().capacity(); }

void SetCurrentThreadName(const std::string& name) {
  TraceRegistry::Global().NameCurrentThread(name);
}

std::vector<ThreadTrace> SnapshotAll() {
  return TraceRegistry::Global().SnapshotAll();
}

size_t NumBufferedEvents() {
  return TraceRegistry::Global().NumBufferedEvents();
}

namespace {

void AppendChromeEvent(std::string& out, bool& first, const std::string& body) {
  out += first ? "\n    " : ",\n    ";
  first = false;
  out += body;
}

std::string MetadataEvent(const char* what, uint32_t tid,
                          const std::string& name) {
  std::string body = "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid);
  body += ",\"name\":\"";
  body += what;
  body += "\",\"args\":{\"name\":";
  AppendJsonEscaped(body, name);
  body += "}}";
  return body;
}

}  // namespace

std::string ToChromeJson() {
  const std::vector<ThreadTrace> threads = SnapshotAll();
  std::string out = "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  bool first = true;
  AppendChromeEvent(out, first, MetadataEvent("process_name", 0, "orpheus"));
  for (const ThreadTrace& t : threads) {
    if (t.events.empty()) continue;
    AppendChromeEvent(out, first, MetadataEvent("thread_name", t.tid, t.name));
    // Pair begin/end events into chrome "complete" (X) events. A ring that
    // wrapped may start with orphaned ends (their begins were overwritten):
    // those are dropped. Spans still open at snapshot time are emitted as
    // bare B events, which Perfetto renders as running to the trace end.
    std::vector<OpenSpan> stack;
    for (const Event& e : t.events) {
      switch (e.type) {
        case EventType::kBegin:
          stack.push_back({e.name, e.ts_us});
          break;
        case EventType::kEnd: {
          if (stack.empty()) break;  // orphaned by wraparound
          const OpenSpan open = stack.back();
          stack.pop_back();
          std::string body = "{\"ph\":\"X\",\"pid\":1,\"tid\":" +
                             std::to_string(t.tid);
          body += ",\"name\":";
          AppendJsonEscaped(body, open.name ? open.name : "?");
          body += ",\"cat\":\"orpheus\",\"ts\":" + std::to_string(open.ts_us);
          body += ",\"dur\":" +
                  std::to_string(e.ts_us >= open.ts_us ? e.ts_us - open.ts_us
                                                       : 0);
          body += "}";
          AppendChromeEvent(out, first, body);
          break;
        }
        case EventType::kInstant: {
          std::string body =
              "{\"ph\":\"i\",\"pid\":1,\"tid\":" + std::to_string(t.tid);
          body += ",\"name\":";
          AppendJsonEscaped(body, e.name ? e.name : "?");
          body += ",\"ts\":" + std::to_string(e.ts_us);
          body += ",\"s\":\"t\",\"args\":{\"arg\":" + std::to_string(e.arg);
          body += "}}";
          AppendChromeEvent(out, first, body);
          break;
        }
        case EventType::kCounter: {
          std::string body =
              "{\"ph\":\"C\",\"pid\":1,\"tid\":" + std::to_string(t.tid);
          body += ",\"name\":";
          AppendJsonEscaped(body, e.name ? e.name : "?");
          body += ",\"ts\":" + std::to_string(e.ts_us);
          body += ",\"args\":{\"value\":" + std::to_string(e.arg);
          body += "}}";
          AppendChromeEvent(out, first, body);
          break;
        }
      }
    }
    for (const OpenSpan& open : stack) {
      std::string body =
          "{\"ph\":\"B\",\"pid\":1,\"tid\":" + std::to_string(t.tid);
      body += ",\"name\":";
      AppendJsonEscaped(body, open.name ? open.name : "?");
      body += ",\"cat\":\"orpheus\",\"ts\":" + std::to_string(open.ts_us);
      body += "}";
      AppendChromeEvent(out, first, body);
    }
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

namespace {

struct PathAgg {
  uint64_t count = 0;
  uint64_t total_us = 0;
  uint64_t child_us = 0;
  std::vector<uint64_t> durations_us;
};

uint64_t ExactP95(std::vector<uint64_t>* durations) {
  if (durations->empty()) return 0;
  // Nearest-rank: ceil(0.95 * n) as a 1-based rank.
  const size_t n = durations->size();
  size_t rank = (n * 95 + 99) / 100;
  if (rank < 1) rank = 1;
  std::nth_element(durations->begin(), durations->begin() + (rank - 1),
                   durations->end());
  return (*durations)[rank - 1];
}

}  // namespace

std::string ProfileReport() {
  const std::vector<ThreadTrace> threads = SnapshotAll();
  // Reconstruct slash-joined span paths per thread (the same shape the
  // metrics registry aggregates) and fold every completed span in.
  std::map<std::string, PathAgg> aggs;
  size_t dropped_opens = 0;
  for (const ThreadTrace& t : threads) {
    std::vector<OpenSpan> stack;
    for (const Event& e : t.events) {
      if (e.type == EventType::kBegin) {
        stack.push_back({e.name, e.ts_us});
      } else if (e.type == EventType::kEnd) {
        if (stack.empty()) continue;  // orphaned by wraparound
        const OpenSpan open = stack.back();
        stack.pop_back();
        std::string parent;
        for (const OpenSpan& outer : stack) {
          if (!parent.empty()) parent += '/';
          parent += outer.name ? outer.name : "?";
        }
        std::string path = parent.empty()
                               ? std::string(open.name ? open.name : "?")
                               : parent + "/" + (open.name ? open.name : "?");
        const uint64_t dur =
            e.ts_us >= open.ts_us ? e.ts_us - open.ts_us : 0;
        PathAgg& agg = aggs[path];
        agg.count += 1;
        agg.total_us += dur;
        agg.durations_us.push_back(dur);
        if (!parent.empty()) aggs[parent].child_us += dur;
      }
    }
    dropped_opens += stack.size();
  }
  if (aggs.empty()) return "(no spans traced)\n";

  TablePrinter table({"stage", "count", "total", "self", "p95"});
  for (auto& [path, agg] : aggs) {
    // Indent by depth; show only the leaf name, tree-style.
    const size_t depth = static_cast<size_t>(
        std::count(path.begin(), path.end(), '/'));
    const size_t leaf = path.rfind('/');
    std::string label(depth * 2, ' ');
    label += leaf == std::string::npos ? path : path.substr(leaf + 1);
    const uint64_t self_us =
        agg.total_us >= agg.child_us ? agg.total_us - agg.child_us : 0;
    table.AddRow({label, std::to_string(agg.count),
                  HumanSeconds(static_cast<double>(agg.total_us) * 1e-6),
                  HumanSeconds(static_cast<double>(self_us) * 1e-6),
                  HumanSeconds(static_cast<double>(
                                   ExactP95(&agg.durations_us)) *
                               1e-6)});
  }
  std::ostringstream os;
  table.Print(os);
  if (dropped_opens > 0) {
    os << "(" << dropped_opens << " span(s) still open, not shown)\n";
  }
  return os.str();
}

}  // namespace orpheus::trace
