#include "common/failpoint.h"

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <thread>

#include "common/env.h"
#include "common/log.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/sync.h"

namespace orpheus::failpoint {

namespace internal {
std::atomic<int> g_armed_count{0};
}  // namespace internal

namespace {

struct State {
  Action action = Action::kError;
  int trigger_at = 1;
  bool once = false;
  uint64_t hits = 0;
  bool expired = false;
  double probability = 1.0;
  int delay_ms = 0;
};

// Constexpr-constructible, so usable before dynamic initialization runs.
constinit Mutex g_mu("failpoint.registry", lock_rank::kFailpointRegistry);

std::map<std::string, State>& Registry() ORPHEUS_REQUIRES(g_mu) {
  // Leaked, like the other common/ singletons: failpoints may fire from
  // static destructors.
  static std::map<std::string, State>* map = new std::map<std::string, State>();
  return *map;
}

/// RNG behind probabilistic (`p<f>`) failpoints. One global stream under
/// g_mu: with a fixed ORPHEUS_FAILPOINT_SEED and a deterministic hit order
/// a chaos run fires the exact same subset of hits every time.
Xorshift& Rng() ORPHEUS_REQUIRES(g_mu) {
  static Xorshift* rng = new Xorshift(static_cast<uint64_t>(
      ParseEnvInt("ORPHEUS_FAILPOINT_SEED", 1, 0, INT64_MAX)));
  return *rng;
}

/// Arm failpoints named in the ORPHEUS_FAILPOINTS environment variable as
/// soon as the library is loaded, so CLI invocations and forked crash-test
/// children can inject faults without touching the programmatic API.
struct EnvArm {
  EnvArm() {
    if (const char* spec = RawEnv("ORPHEUS_FAILPOINTS")) {
      Status s = ArmFromSpec(spec);
      if (!s.ok()) {
        LOG_WARN("ignoring malformed ORPHEUS_FAILPOINTS",
                 {{"error", s.ToString()}});
      }
    }
  }
};
const EnvArm env_arm;

}  // namespace

void Arm(const std::string& name, Action action, int trigger_at, bool once,
         double probability, int delay_ms) {
  if (probability < 0.0) probability = 0.0;
  if (probability > 1.0) probability = 1.0;
  MutexLock lock(&g_mu);
  auto [it, inserted] = Registry().insert_or_assign(
      name, State{action, trigger_at < 1 ? 1 : trigger_at, once, 0, false,
                  probability, delay_ms < 0 ? 0 : delay_ms});
  (void)it;
  if (inserted) {
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void Reseed(uint64_t seed) {
  MutexLock lock(&g_mu);
  Rng() = Xorshift(seed);
}

void Disarm(const std::string& name) {
  MutexLock lock(&g_mu);
  auto it = Registry().find(name);
  if (it == Registry().end()) return;
  Registry().erase(it);
  internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void DisarmAll() {
  MutexLock lock(&g_mu);
  internal::g_armed_count.fetch_sub(static_cast<int>(Registry().size()),
                                    std::memory_order_relaxed);
  Registry().clear();
}

uint64_t HitCount(const std::string& name) {
  MutexLock lock(&g_mu);
  auto it = Registry().find(name);
  return it == Registry().end() ? 0 : it->second.hits;
}

std::vector<Info> List() {
  MutexLock lock(&g_mu);
  std::vector<Info> out;
  out.reserve(Registry().size());
  for (const auto& [name, st] : Registry()) {
    out.push_back(Info{name, st.action, st.trigger_at, st.once, st.hits,
                       st.expired, st.probability, st.delay_ms});
  }
  return out;
}

Status ArmFromSpec(std::string_view spec) {
  std::string normalized(spec);
  for (char& c : normalized) {
    if (c == ',') c = ';';
  }
  for (const auto& raw : Split(normalized, ';')) {
    std::string entry(Trim(raw));
    if (entry.empty()) continue;
    auto eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument(
          StrFormat("bad failpoint entry '%s' (want name=action[:nth][:once])",
                    entry.c_str()));
    }
    std::string name = entry.substr(0, eq);
    auto parts = Split(entry.substr(eq + 1), ':');
    if (parts.empty()) {
      return Status::InvalidArgument(
          StrFormat("bad failpoint entry '%s': missing action", entry.c_str()));
    }
    std::string action_name = ToLower(parts[0]);
    Action action;
    if (action_name == "error") {
      action = Action::kError;
    } else if (action_name == "abort" || action_name == "crash") {
      action = Action::kAbort;
    } else if (action_name == "delay") {
      action = Action::kDelay;
    } else if (action_name == "off") {
      Disarm(name);
      continue;
    } else {
      return Status::InvalidArgument(StrFormat(
          "bad failpoint action '%s' in '%s' (want error|abort|delay|off)",
          parts[0].c_str(), entry.c_str()));
    }
    int trigger_at = 1;
    bool once = false;
    double probability = 1.0;
    int delay_ms = 50;
    for (size_t i = 1; i < parts.size(); ++i) {
      std::string opt = ToLower(parts[i]);
      if (opt == "once") {
        once = true;
        continue;
      }
      if (opt.size() > 1 && opt[0] == 'p') {
        // p<f>: per-hit firing probability in [0, 1].
        char* end = nullptr;
        const double p = std::strtod(opt.c_str() + 1, &end);
        if (end == nullptr || *end != '\0' || p < 0.0 || p > 1.0) {
          return Status::InvalidArgument(StrFormat(
              "bad failpoint probability '%s' in '%s' (want p<float in "
              "[0,1]>, e.g. p0.3)",
              parts[i].c_str(), entry.c_str()));
        }
        probability = p;
        continue;
      }
      if (opt.size() > 2 && opt.compare(opt.size() - 2, 2, "ms") == 0) {
        auto ms = ParseIntStrict(opt.substr(0, opt.size() - 2));
        if (!ms || *ms < 0) {
          return Status::InvalidArgument(StrFormat(
              "bad failpoint delay '%s' in '%s' (want <millis>ms)",
              parts[i].c_str(), entry.c_str()));
        }
        delay_ms = static_cast<int>(*ms);
        continue;
      }
      auto n = ParseIntStrict(opt);
      if (!n || *n < 1) {
        return Status::InvalidArgument(
            StrFormat("bad failpoint option '%s' in '%s' (want a positive "
                      "ordinal, 'once', p<prob>, or <millis>ms)",
                      parts[i].c_str(), entry.c_str()));
      }
      trigger_at = static_cast<int>(*n);
    }
    Arm(name, action, trigger_at, once, probability, delay_ms);
  }
  return Status::OK();
}

namespace internal {

std::optional<Action> ConsumeHit(const char* name) {
  int delay_ms = 0;
  {
    MutexLock lock(&g_mu);
    auto it = Registry().find(name);
    if (it == Registry().end()) return std::nullopt;
    State& st = it->second;
    ++st.hits;
    if (st.expired) return std::nullopt;
    bool fire = st.once ? st.hits == static_cast<uint64_t>(st.trigger_at)
                        : st.hits >= static_cast<uint64_t>(st.trigger_at);
    // The probability draw happens on every *eligible* hit (so the RNG
    // stream position depends only on the hit sequence, keeping seeded
    // chaos runs replayable) and gates whether this one actually fires.
    if (fire && st.probability < 1.0) fire = Rng().Bernoulli(st.probability);
    if (!fire) return std::nullopt;
    if (st.once) st.expired = true;
    if (st.action != Action::kDelay) return st.action;
    delay_ms = st.delay_ms;
  }
  // kDelay is absorbed here — outside the registry lock (rank 60: sleeping
  // under it would stall every other site) — so the dozens of existing
  // sites need no per-site delay handling: to them a delay hit looks like
  // "not fired", just later.
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return std::nullopt;
}

Status Fire(const char* name) {
  auto action = ConsumeHit(name);
  if (!action) return Status::OK();
  if (*action == Action::kAbort) CrashNow(name);
  return Status::Internal(
      StrFormat("injected failure at failpoint %s", name));
}

void CrashNow(const char* name) {
  // LOG_DEBUG, not WARN: the crash matrix kills hundreds of children and
  // their death is the expected outcome, not a diagnostic event.
  LOG_DEBUG("failpoint crash", {{"failpoint", name}});
  ::_exit(134);
}

}  // namespace internal

}  // namespace orpheus::failpoint
