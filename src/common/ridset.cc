#include "common/ridset.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>

#include "common/env.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/sync.h"

namespace orpheus {

namespace {

constexpr size_t kWordsPerChunk = 1024;  // 65536 bits
constexpr uint64_t kBitmapBytes = kWordsPerChunk * 8;

static_assert((-1 >> 1) == -1, "arithmetic right shift required");

int64_t ChunkKey(int64_t v) { return v >> 16; }
uint16_t ChunkLow(int64_t v) { return static_cast<uint16_t>(v & 0xFFFF); }
int64_t ChunkValue(int64_t key, uint16_t low) {
  return static_cast<int64_t>((static_cast<uint64_t>(key) << 16) | low);
}

bool BitTest(const std::vector<uint64_t>& words, uint16_t low) {
  return (words[low >> 6] >> (low & 63)) & 1;
}

void SetBitRange(std::vector<uint64_t>& words, uint16_t start, uint16_t last) {
  size_t ws = start >> 6;
  size_t we = last >> 6;
  uint64_t first = ~0ull << (start & 63);
  uint64_t tail = ~0ull >> (63 - (last & 63));
  if (ws == we) {
    words[ws] |= first & tail;
    return;
  }
  words[ws] |= first;
  for (size_t w = ws + 1; w < we; ++w) words[w] = ~0ull;
  words[we] |= tail;
}

/// Count of maximal runs of consecutive values in a strictly ascending list.
size_t CountRuns(const uint16_t* lows, size_t n) {
  size_t runs = 1;
  for (size_t i = 1; i < n; ++i) {
    runs += (lows[i] != static_cast<uint16_t>(lows[i - 1] + 1) ||
             lows[i - 1] == 0xFFFF);
  }
  return runs;
}

/// Deterministic container choice: run iff strictly smallest, else array
/// unless it would exceed the bitmap, else bitmap.
RidSet::ContainerType ChooseType(size_t card, size_t nruns) {
  uint64_t array_bytes = 2 * static_cast<uint64_t>(card);
  uint64_t run_bytes = 4 * static_cast<uint64_t>(nruns);
  if (run_bytes < array_bytes && run_bytes < kBitmapBytes) {
    return RidSet::ContainerType::kRun;
  }
  if (array_bytes <= kBitmapBytes) return RidSet::ContainerType::kArray;
  return RidSet::ContainerType::kBitmap;
}

/// Build the canonical container for a chunk from its strictly ascending
/// low-16-bit values. n >= 1.
RidSet::Container MakeCanonical(int64_t key, const uint16_t* lows, size_t n) {
  RidSet::Container c;
  c.key = key;
  c.cardinality = static_cast<uint32_t>(n);
  size_t nruns = CountRuns(lows, n);
  c.type = ChooseType(n, nruns);
  switch (c.type) {
    case RidSet::ContainerType::kArray:
      c.u16.assign(lows, lows + n);
      break;
    case RidSet::ContainerType::kRun: {
      c.u16.reserve(2 * nruns);
      uint16_t start = lows[0];
      uint16_t prev = lows[0];
      for (size_t i = 1; i < n; ++i) {
        if (lows[i] != static_cast<uint16_t>(prev + 1) || prev == 0xFFFF) {
          c.u16.push_back(start);
          c.u16.push_back(prev);
          start = lows[i];
        }
        prev = lows[i];
      }
      c.u16.push_back(start);
      c.u16.push_back(prev);
      break;
    }
    case RidSet::ContainerType::kBitmap:
      c.words.assign(kWordsPerChunk, 0);
      for (size_t i = 0; i < n; ++i) {
        c.words[lows[i] >> 6] |= uint64_t{1} << (lows[i] & 63);
      }
      break;
  }
  return c;
}

void ContainerToWords(const RidSet::Container& c, std::vector<uint64_t>& w) {
  switch (c.type) {
    case RidSet::ContainerType::kArray:
      for (uint16_t low : c.u16) w[low >> 6] |= uint64_t{1} << (low & 63);
      break;
    case RidSet::ContainerType::kBitmap:
      w = c.words;
      break;
    case RidSet::ContainerType::kRun:
      for (size_t i = 0; i + 1 < c.u16.size(); i += 2) {
        SetBitRange(w, c.u16[i], c.u16[i + 1]);
      }
      break;
  }
}

/// Canonical container from a chunk's bit words; cardinality 0 yields a
/// container with cardinality 0 (caller drops it).
RidSet::Container CanonicalFromWords(int64_t key,
                                     const std::vector<uint64_t>& w) {
  size_t card = 0;
  size_t nruns = 0;
  uint64_t carry = 0;  // high bit of the previous word
  for (size_t i = 0; i < kWordsPerChunk; ++i) {
    uint64_t x = w[i];
    card += static_cast<size_t>(std::popcount(x));
    nruns += static_cast<size_t>(std::popcount(x & ~((x << 1) | carry)));
    carry = x >> 63;
  }
  RidSet::Container c;
  c.key = key;
  c.cardinality = static_cast<uint32_t>(card);
  if (card == 0) return c;
  c.type = ChooseType(card, nruns);
  if (c.type == RidSet::ContainerType::kBitmap) {
    c.words = w;
    return c;
  }
  std::vector<uint16_t> lows;
  lows.reserve(card);
  for (size_t i = 0; i < kWordsPerChunk; ++i) {
    uint64_t x = w[i];
    while (x) {
      lows.push_back(static_cast<uint16_t>((i << 6) +
                                           std::countr_zero(x)));
      x &= x - 1;
    }
  }
  return MakeCanonical(key, lows.data(), lows.size());
}

bool ContainerContains(const RidSet::Container& c, uint16_t low) {
  switch (c.type) {
    case RidSet::ContainerType::kArray:
      return std::binary_search(c.u16.begin(), c.u16.end(), low);
    case RidSet::ContainerType::kBitmap:
      return BitTest(c.words, low);
    case RidSet::ContainerType::kRun: {
      size_t nr = c.u16.size() / 2;
      size_t lo = 0, hi = nr;
      while (lo < hi) {  // first run with start > low
        size_t mid = (lo + hi) / 2;
        if (c.u16[2 * mid] <= low) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo > 0 && low <= c.u16[2 * (lo - 1) + 1];
    }
  }
  return false;
}

enum class SetOp { kIntersect, kUnion, kDifference };

uint64_t ApplyOp(SetOp op, uint64_t a, uint64_t b) {
  switch (op) {
    case SetOp::kIntersect: return a & b;
    case SetOp::kUnion: return a | b;
    case SetOp::kDifference: return a & ~b;
  }
  return 0;
}

/// Combine two containers with the same key. Array-array pairs merge
/// directly; anything touching a bitmap or run goes word-at-a-time.
RidSet::Container CombinePair(SetOp op, const RidSet::Container& a,
                              const RidSet::Container& b) {
  if (a.type == RidSet::ContainerType::kArray &&
      b.type == RidSet::ContainerType::kArray) {
    std::vector<uint16_t> lows;
    switch (op) {
      case SetOp::kIntersect:
        std::set_intersection(a.u16.begin(), a.u16.end(), b.u16.begin(),
                              b.u16.end(), std::back_inserter(lows));
        break;
      case SetOp::kUnion:
        std::set_union(a.u16.begin(), a.u16.end(), b.u16.begin(),
                       b.u16.end(), std::back_inserter(lows));
        break;
      case SetOp::kDifference:
        std::set_difference(a.u16.begin(), a.u16.end(), b.u16.begin(),
                            b.u16.end(), std::back_inserter(lows));
        break;
    }
    RidSet::Container c;
    c.key = a.key;
    if (lows.empty()) return c;
    return MakeCanonical(a.key, lows.data(), lows.size());
  }
  std::vector<uint64_t> wa(kWordsPerChunk, 0);
  std::vector<uint64_t> wb(kWordsPerChunk, 0);
  ContainerToWords(a, wa);
  ContainerToWords(b, wb);
  for (size_t i = 0; i < kWordsPerChunk; ++i) {
    wa[i] = ApplyOp(op, wa[i], wb[i]);
  }
  return CanonicalFromWords(a.key, wa);
}

uint64_t ContainerSerializedBytes(const RidSet::Container& c) {
  // Header: i64 key + u8 type + u32 cardinality.
  uint64_t bytes = 8 + 1 + 4;
  switch (c.type) {
    case RidSet::ContainerType::kArray: {
      uint16_t max_low = c.u16.empty() ? 0 : c.u16.back();
      uint32_t width = std::max(1u, static_cast<uint32_t>(
                                        std::bit_width(uint32_t{max_low})));
      bytes += 1 + (c.u16.size() * width + 7) / 8;  // u8 width + packed
      break;
    }
    case RidSet::ContainerType::kBitmap:
      bytes += kBitmapBytes;
      break;
    case RidSet::ContainerType::kRun:
      bytes += 4 + c.u16.size() * 2;  // u32 run count + raw pairs
      break;
  }
  return bytes;
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}

/// Little-endian bounds-checked reader for DeserializeBlob.
class BlobReader {
 public:
  explicit BlobReader(std::string_view blob) : blob_(blob) {}

  bool Read(size_t n, const uint8_t** out) {
    if (blob_.size() - pos_ < n) return false;
    *out = reinterpret_cast<const uint8_t*>(blob_.data()) + pos_;
    pos_ += n;
    return true;
  }
  bool U8(uint8_t* v) {
    const uint8_t* p;
    if (!Read(1, &p)) return false;
    *v = p[0];
    return true;
  }
  bool U32(uint32_t* v) {
    const uint8_t* p;
    if (!Read(4, &p)) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= uint32_t{p[i]} << (8 * i);
    return true;
  }
  bool U64(uint64_t* v) {
    const uint8_t* p;
    if (!Read(8, &p)) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= uint64_t{p[i]} << (8 * i);
    return true;
  }
  bool AtEnd() const { return pos_ == blob_.size(); }

 private:
  std::string_view blob_;
  size_t pos_ = 0;
};

std::atomic<int> g_ridset_enabled{-1};  // -1: not yet read from env

}  // namespace

bool RidSetEnabled() {
  int v = g_ridset_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = ParseEnvBool("ORPHEUS_RIDSET", true) ? 1 : 0;
    g_ridset_enabled.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void SetRidSetEnabled(bool enabled) {
  g_ridset_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

RidSet RidSet::FromSorted(const std::vector<int64_t>& sorted_unique) {
  RidSet out;
  out.cardinality_ = sorted_unique.size();
  if (sorted_unique.empty()) return out;
  std::vector<uint16_t> lows;
  size_t i = 0;
  const size_t n = sorted_unique.size();
  while (i < n) {
    int64_t key = ChunkKey(sorted_unique[i]);
    lows.clear();
    while (i < n && ChunkKey(sorted_unique[i]) == key) {
      assert(lows.empty() || ChunkLow(sorted_unique[i]) > lows.back());
      lows.push_back(ChunkLow(sorted_unique[i]));
      ++i;
    }
    out.containers_.push_back(MakeCanonical(key, lows.data(), lows.size()));
  }
  ORPHEUS_COUNTER_ADD("ridset.build.calls", 1);
  ORPHEUS_COUNTER_ADD("ridset.build.values", static_cast<int64_t>(n));
  ORPHEUS_COUNTER_ADD("ridset.build.bytes_raw", static_cast<int64_t>(n * 8));
  ORPHEUS_COUNTER_ADD("ridset.build.bytes_packed",
                      static_cast<int64_t>(out.SizeBytes()));
  for (const Container& c : out.containers_) {
    switch (c.type) {
      case ContainerType::kArray:
        ORPHEUS_COUNTER_ADD("ridset.containers.array", 1);
        break;
      case ContainerType::kBitmap:
        ORPHEUS_COUNTER_ADD("ridset.containers.bitmap", 1);
        break;
      case ContainerType::kRun:
        ORPHEUS_COUNTER_ADD("ridset.containers.run", 1);
        break;
    }
  }
  return out;
}

std::shared_ptr<const RidSet> RidSet::TryFromVector(
    const std::vector<int64_t>& v, size_t min_size) {
  if (v.size() < min_size) return nullptr;
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i] <= v[i - 1]) return nullptr;
  }
  return std::make_shared<const RidSet>(FromSorted(v));
}

bool RidSet::Contains(int64_t v) const {
  int64_t key = ChunkKey(v);
  auto it = std::lower_bound(
      containers_.begin(), containers_.end(), key,
      [](const Container& c, int64_t k) { return c.key < k; });
  if (it == containers_.end() || it->key != key) return false;
  return ContainerContains(*it, ChunkLow(v));
}

bool RidSet::ContainsHint(int64_t v, size_t* hint) const {
  int64_t key = ChunkKey(v);
  if (*hint < containers_.size() && containers_[*hint].key == key) {
    return ContainerContains(containers_[*hint], ChunkLow(v));
  }
  auto it = std::lower_bound(
      containers_.begin(), containers_.end(), key,
      [](const Container& c, int64_t k) { return c.key < k; });
  if (it == containers_.end() || it->key != key) return false;
  *hint = static_cast<size_t>(it - containers_.begin());
  return ContainerContains(*it, ChunkLow(v));
}

namespace {

RidSet CombineSets(SetOp op, const RidSet& a, const RidSet& b) {
  RidSet out;
  std::vector<RidSet::Container> result;
  const auto& ca = a.containers();
  const auto& cb = b.containers();
  size_t i = 0, j = 0;
  while (i < ca.size() || j < cb.size()) {
    bool take_a = j == cb.size() ||
                  (i < ca.size() && ca[i].key < cb[j].key);
    bool take_b = i == ca.size() ||
                  (j < cb.size() && cb[j].key < ca[i].key);
    if (take_a) {
      if (op != SetOp::kIntersect) result.push_back(ca[i]);
      ++i;
    } else if (take_b) {
      if (op == SetOp::kUnion) result.push_back(cb[j]);
      ++j;
    } else {
      RidSet::Container c = CombinePair(op, ca[i], cb[j]);
      if (c.cardinality > 0) result.push_back(std::move(c));
      ++i;
      ++j;
    }
  }
  return RidSet::FromContainers(std::move(result));
}

}  // namespace

RidSet RidSet::FromContainers(std::vector<Container> containers) {
  RidSet out;
  out.containers_ = std::move(containers);
  for (const Container& c : out.containers_) out.cardinality_ += c.cardinality;
  return out;
}

RidSet RidSet::Intersect(const RidSet& other) const {
  ORPHEUS_COUNTER_ADD("ridset.intersect.calls", 1);
  return CombineSets(SetOp::kIntersect, *this, other);
}

RidSet RidSet::Union(const RidSet& other) const {
  ORPHEUS_COUNTER_ADD("ridset.union.calls", 1);
  return CombineSets(SetOp::kUnion, *this, other);
}

RidSet RidSet::Difference(const RidSet& other) const {
  ORPHEUS_COUNTER_ADD("ridset.difference.calls", 1);
  return CombineSets(SetOp::kDifference, *this, other);
}

RidSet RidSet::WithAppended(int64_t v) const {
  int64_t key = ChunkKey(v);
  uint16_t low = ChunkLow(v);
  RidSet out;
  out.containers_.reserve(containers_.size() + 1);
  auto it = std::lower_bound(
      containers_.begin(), containers_.end(), key,
      [](const Container& c, int64_t k) { return c.key < k; });
  out.containers_.assign(containers_.begin(), it);
  if (it != containers_.end() && it->key == key) {
    if (ContainerContains(*it, low)) return *this;  // already present
    if (it->type == ContainerType::kArray) {
      std::vector<uint16_t> lows = it->u16;
      lows.insert(std::lower_bound(lows.begin(), lows.end(), low), low);
      out.containers_.push_back(MakeCanonical(key, lows.data(), lows.size()));
    } else {
      std::vector<uint64_t> w(kWordsPerChunk, 0);
      ContainerToWords(*it, w);
      w[low >> 6] |= uint64_t{1} << (low & 63);
      out.containers_.push_back(CanonicalFromWords(key, w));
    }
    ++it;
  } else {
    out.containers_.push_back(MakeCanonical(key, &low, 1));
  }
  out.containers_.insert(out.containers_.end(), it, containers_.end());
  out.cardinality_ = cardinality_ + 1;
  return out;
}

void RidSet::IntersectToRows(const int64_t* rids, size_t n,
                             std::vector<uint32_t>* rows_out,
                             uint32_t base_row) const {
  const int64_t* cur = rids;
  const int64_t* end = rids + n;
  for (const Container& c : containers_) {
    int64_t chunk_lo = ChunkValue(c.key, 0);
    int64_t chunk_hi = ChunkValue(c.key, 0xFFFF);
    const int64_t* p = std::lower_bound(cur, end, chunk_lo);
    const int64_t* q = std::upper_bound(p, end, chunk_hi);
    cur = q;
    if (p == q) continue;
    size_t len = static_cast<size_t>(q - p);
    switch (c.type) {
      case ContainerType::kBitmap:
        for (const int64_t* it = p; it != q; ++it) {
          uint16_t low = ChunkLow(*it);
          if (BitTest(c.words, low)) {
            rows_out->push_back(base_row + static_cast<uint32_t>(it - rids));
          }
        }
        break;
      case ContainerType::kArray:
        if (static_cast<uint64_t>(c.cardinality) * 32 < len) {
          // Sparse chunk vs long column subrange: gallop per set value.
          const int64_t* hint = p;
          for (uint16_t low : c.u16) {
            int64_t v = ChunkValue(c.key, low);
            hint = std::lower_bound(hint, q, v);
            for (const int64_t* it = hint; it != q && *it == v; ++it) {
              rows_out->push_back(base_row + static_cast<uint32_t>(it - rids));
            }
          }
        } else {
          // Comparable sizes: two-pointer merge over the subrange.
          size_t k = 0;
          for (const int64_t* it = p; it != q && k < c.u16.size();) {
            int64_t v = ChunkValue(c.key, c.u16[k]);
            if (*it < v) {
              ++it;
            } else if (*it > v) {
              ++k;
            } else {
              rows_out->push_back(base_row + static_cast<uint32_t>(it - rids));
              ++it;
            }
          }
        }
        break;
      case ContainerType::kRun:
        for (size_t r = 0; r + 1 < c.u16.size(); r += 2) {
          int64_t vs = ChunkValue(c.key, c.u16[r]);
          int64_t ve = ChunkValue(c.key, c.u16[r + 1]);
          const int64_t* rp = std::lower_bound(p, q, vs);
          const int64_t* rq = std::upper_bound(rp, q, ve);
          for (const int64_t* it = rp; it != rq; ++it) {
            rows_out->push_back(base_row + static_cast<uint32_t>(it - rids));
          }
          p = rq;
        }
        break;
    }
  }
  ORPHEUS_COUNTER_ADD("ridset.intersect_rows.calls", 1);
  ORPHEUS_COUNTER_ADD("ridset.intersect_rows.scanned",
                      static_cast<int64_t>(n));
}

std::vector<int64_t> RidSet::ToVector() const {
  std::vector<int64_t> out;
  out.reserve(cardinality_);
  for (const Container& c : containers_) {
    switch (c.type) {
      case ContainerType::kArray:
        for (uint16_t low : c.u16) out.push_back(ChunkValue(c.key, low));
        break;
      case ContainerType::kBitmap:
        for (size_t i = 0; i < kWordsPerChunk; ++i) {
          uint64_t x = c.words[i];
          while (x) {
            out.push_back(ChunkValue(
                c.key,
                static_cast<uint16_t>((i << 6) + std::countr_zero(x))));
            x &= x - 1;
          }
        }
        break;
      case ContainerType::kRun:
        for (size_t r = 0; r + 1 < c.u16.size(); r += 2) {
          for (uint32_t low = c.u16[r]; low <= c.u16[r + 1]; ++low) {
            out.push_back(ChunkValue(c.key, static_cast<uint16_t>(low)));
          }
        }
        break;
    }
  }
  return out;
}

const std::vector<int64_t>& RidSet::Materialized() const {
  // Global lock: materialization is the cold legacy path; the fill happens
  // once and the vector is immutable afterwards, so handing out a reference
  // is safe across threads.
  static Mutex mu("ridset.materialize", lock_rank::kRidSetMaterialize);
  MutexLock lock(&mu);
  if (!materialized_) {
    materialized_ = std::make_shared<const std::vector<int64_t>>(ToVector());
    ORPHEUS_COUNTER_ADD("ridset.materialize.calls", 1);
    ORPHEUS_COUNTER_ADD("ridset.materialize.values",
                        static_cast<int64_t>(cardinality_));
  }
  return *materialized_;
}

uint64_t RidSet::SizeBytes() const {
  uint64_t bytes = 4;  // u32 container count
  for (const Container& c : containers_) bytes += ContainerSerializedBytes(c);
  return bytes;
}

Status RidSet::Validate() const {
  size_t total = 0;
  for (size_t ci = 0; ci < containers_.size(); ++ci) {
    const Container& c = containers_[ci];
    if (ci > 0 && containers_[ci - 1].key >= c.key) {
      return Status::Corruption(
          StrFormat("ridset: chunk keys not ascending at %zu", ci));
    }
    if (c.cardinality == 0) {
      return Status::Corruption(
          StrFormat("ridset: empty container at chunk %lld",
                    static_cast<long long>(c.key)));
    }
    size_t card = 0;
    size_t nruns = 0;
    switch (c.type) {
      case ContainerType::kArray: {
        if (!c.words.empty() || c.u16.size() != c.cardinality) {
          return Status::Corruption("ridset: array payload shape mismatch");
        }
        for (size_t i = 1; i < c.u16.size(); ++i) {
          if (c.u16[i] <= c.u16[i - 1]) {
            return Status::Corruption("ridset: array values not ascending");
          }
        }
        card = c.u16.size();
        nruns = CountRuns(c.u16.data(), c.u16.size());
        break;
      }
      case ContainerType::kBitmap: {
        if (!c.u16.empty() || c.words.size() != kWordsPerChunk) {
          return Status::Corruption("ridset: bitmap payload shape mismatch");
        }
        uint64_t carry = 0;
        for (uint64_t x : c.words) {
          card += static_cast<size_t>(std::popcount(x));
          nruns += static_cast<size_t>(std::popcount(x & ~((x << 1) | carry)));
          carry = x >> 63;
        }
        break;
      }
      case ContainerType::kRun: {
        if (!c.words.empty() || c.u16.empty() || c.u16.size() % 2 != 0) {
          return Status::Corruption("ridset: run payload shape mismatch");
        }
        for (size_t r = 0; r + 1 < c.u16.size(); r += 2) {
          uint16_t start = c.u16[r];
          uint16_t last = c.u16[r + 1];
          if (last < start) {
            return Status::Corruption("ridset: run with last < start");
          }
          if (r >= 2 && start <= c.u16[r - 1] + 1) {
            return Status::Corruption(
                "ridset: runs not disjoint/ascending or mergeable");
          }
          card += static_cast<size_t>(last - start) + 1;
        }
        nruns = c.u16.size() / 2;
        break;
      }
      default:
        return Status::Corruption("ridset: unknown container type");
    }
    if (card != c.cardinality) {
      return Status::Corruption(StrFormat(
          "ridset: cardinality %u does not match payload %zu",
          c.cardinality, card));
    }
    if (ChooseType(card, nruns) != c.type) {
      return Status::Corruption(
          StrFormat("ridset: non-canonical container type at chunk %lld",
                    static_cast<long long>(c.key)));
    }
    total += card;
  }
  if (total != cardinality_) {
    return Status::Corruption("ridset: total cardinality mismatch");
  }
  return Status::OK();
}

std::string RidSet::SerializeBlob() const {
  std::string out;
  out.reserve(SizeBytes());
  PutU32(&out, static_cast<uint32_t>(containers_.size()));
  for (const Container& c : containers_) {
    PutU64(&out, static_cast<uint64_t>(c.key));
    PutU8(&out, static_cast<uint8_t>(c.type));
    PutU32(&out, c.cardinality);
    switch (c.type) {
      case ContainerType::kArray: {
        uint16_t max_low = c.u16.empty() ? 0 : c.u16.back();
        uint32_t width = std::max(1u, static_cast<uint32_t>(
                                          std::bit_width(uint32_t{max_low})));
        PutU8(&out, static_cast<uint8_t>(width));
        uint64_t acc = 0;
        uint32_t nbits = 0;
        for (uint16_t low : c.u16) {
          acc |= uint64_t{low} << nbits;
          nbits += width;
          while (nbits >= 8) {
            PutU8(&out, static_cast<uint8_t>(acc));
            acc >>= 8;
            nbits -= 8;
          }
        }
        if (nbits > 0) PutU8(&out, static_cast<uint8_t>(acc));
        break;
      }
      case ContainerType::kBitmap:
        for (uint64_t w : c.words) PutU64(&out, w);
        break;
      case ContainerType::kRun:
        PutU32(&out, static_cast<uint32_t>(c.u16.size() / 2));
        for (uint16_t v : c.u16) {
          PutU8(&out, static_cast<uint8_t>(v));
          PutU8(&out, static_cast<uint8_t>(v >> 8));
        }
        break;
    }
  }
  return out;
}

Result<RidSet> RidSet::DeserializeBlob(std::string_view blob) {
  BlobReader reader(blob);
  uint32_t num_containers = 0;
  if (!reader.U32(&num_containers)) {
    return Status::Corruption("ridset blob: truncated container count");
  }
  RidSet out;
  out.containers_.reserve(num_containers);
  for (uint32_t ci = 0; ci < num_containers; ++ci) {
    uint64_t key_bits = 0;
    uint8_t type = 0;
    uint32_t card = 0;
    if (!reader.U64(&key_bits) || !reader.U8(&type) || !reader.U32(&card)) {
      return Status::Corruption("ridset blob: truncated container header");
    }
    if (type > 2) {
      return Status::Corruption("ridset blob: bad container type");
    }
    if (card == 0 || card > 65536) {
      return Status::Corruption("ridset blob: bad container cardinality");
    }
    Container c;
    c.key = static_cast<int64_t>(key_bits);
    c.type = static_cast<ContainerType>(type);
    c.cardinality = card;
    switch (c.type) {
      case ContainerType::kArray: {
        uint8_t width = 0;
        if (!reader.U8(&width) || width < 1 || width > 16) {
          return Status::Corruption("ridset blob: bad array bit width");
        }
        size_t nbytes = (static_cast<size_t>(card) * width + 7) / 8;
        const uint8_t* p;
        if (!reader.Read(nbytes, &p)) {
          return Status::Corruption("ridset blob: truncated array payload");
        }
        c.u16.reserve(card);
        uint64_t acc = 0;
        uint32_t nbits = 0;
        size_t byte = 0;
        uint64_t mask = (uint64_t{1} << width) - 1;
        for (uint32_t i = 0; i < card; ++i) {
          while (nbits < width) {
            acc |= uint64_t{p[byte++]} << nbits;
            nbits += 8;
          }
          c.u16.push_back(static_cast<uint16_t>(acc & mask));
          acc >>= width;
          nbits -= width;
        }
        break;
      }
      case ContainerType::kBitmap: {
        c.words.reserve(kWordsPerChunk);
        for (size_t i = 0; i < kWordsPerChunk; ++i) {
          uint64_t w = 0;
          if (!reader.U64(&w)) {
            return Status::Corruption("ridset blob: truncated bitmap");
          }
          c.words.push_back(w);
        }
        break;
      }
      case ContainerType::kRun: {
        uint32_t nruns = 0;
        if (!reader.U32(&nruns) || nruns == 0 || nruns > 32768) {
          return Status::Corruption("ridset blob: bad run count");
        }
        const uint8_t* p;
        if (!reader.Read(static_cast<size_t>(nruns) * 4, &p)) {
          return Status::Corruption("ridset blob: truncated run payload");
        }
        c.u16.reserve(2 * nruns);
        for (uint32_t r = 0; r < 2 * nruns; ++r) {
          c.u16.push_back(
              static_cast<uint16_t>(p[2 * r] | (uint32_t{p[2 * r + 1]} << 8)));
        }
        break;
      }
    }
    out.cardinality_ += card;
    out.containers_.push_back(std::move(c));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("ridset blob: trailing bytes");
  }
  Status valid = out.Validate();
  if (!valid.ok()) return valid;
  return out;
}

}  // namespace orpheus
