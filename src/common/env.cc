#include "common/env.h"

#include <charconv>
#include <cstdlib>
#include <set>
#include <string>

#include "common/log.h"
#include "common/sync.h"

namespace orpheus {

namespace {

// One warning per distinct (variable, raw value) so a misconfigured shell
// profile does not spam every process start but a changed value re-warns.
void WarnOnce(const char* name, const char* raw, const std::string& why) {
  static Mutex mu("env.warn_once", lock_rank::kEnvWarnOnce);
  static std::set<std::string>* warned = new std::set<std::string>();
  {
    MutexLock lock(&mu);
    if (!warned->insert(std::string(name) + "=" + raw).second) return;
  }
  LOG_WARN("ignoring environment variable",
           {{"var", name}, {"value", raw}, {"why", why}});
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c += 'a' - 'A';
  }
  return out;
}

}  // namespace

std::optional<int64_t> ParseIntStrict(std::string_view text) {
  if (text.empty()) return std::nullopt;
  size_t begin = text[0] == '+' ? 1 : 0;  // from_chars rejects a leading '+'
  if (begin == text.size()) return std::nullopt;
  int64_t value = 0;
  const char* first = text.data() + begin;
  const char* last = text.data() + text.size();
  auto [end, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || end != last) return std::nullopt;
  return value;
}

int64_t ParseEnvInt(const char* name, int64_t fallback, int64_t min_value,
                    int64_t max_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  std::optional<int64_t> parsed = ParseIntStrict(raw);
  if (!parsed) {
    WarnOnce(name, raw, "not an integer; using default");
    return fallback;
  }
  if (*parsed < min_value || *parsed > max_value) {
    WarnOnce(name, raw,
             "out of range [" + std::to_string(min_value) + ", " +
                 std::to_string(max_value) + "]; using default");
    return fallback;
  }
  return *parsed;
}

bool ParseEnvBool(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  const std::string v = ToLowerAscii(raw);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  WarnOnce(name, raw, "not a boolean (want 0/1/true/false); using default");
  return fallback;
}

const char* RawEnv(const char* name) { return std::getenv(name); }

}  // namespace orpheus
