#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace orpheus {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r'))
    ++b;
  while (e > b &&
         (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
          s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  return StrFormat("%.2f %s", v, kUnits[unit]);
}

std::string HumanSeconds(double seconds) {
  if (seconds < 1e-3) return StrFormat("%.1f us", seconds * 1e6);
  if (seconds < 1.0) return StrFormat("%.1f ms", seconds * 1e3);
  if (seconds < 120.0) return StrFormat("%.2f s", seconds);
  return StrFormat("%.1f min", seconds / 60.0);
}

void AppendJsonEscaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace orpheus
