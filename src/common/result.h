#ifndef ORPHEUS_COMMON_RESULT_H_
#define ORPHEUS_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace orpheus {

/// Result<T> holds either a value of type T or an error Status.
///
/// Usage:
///   Result<VersionId> r = cvd.Commit(...);
///   if (!r.ok()) return r.status();
///   VersionId vid = r.ValueOrDie();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : var_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(var_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(var_);
  }

  const T& ValueOrDie() const {
    assert(ok());
    return std::get<T>(var_);
  }
  T& ValueOrDie() {
    assert(ok());
    return std::get<T>(var_);
  }

  /// Move the contained value out; only valid when ok().
  T MoveValueOrDie() {
    assert(ok());
    return std::move(std::get<T>(var_));
  }

  const T& operator*() const { return ValueOrDie(); }
  T& operator*() { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> var_;
};

/// Assign the value of a Result expression to `lhs`, propagating errors.
#define ORPHEUS_ASSIGN_OR_RETURN(lhs, expr)      \
  auto ORPHEUS_CONCAT_(_res_, __LINE__) = (expr);       \
  if (!ORPHEUS_CONCAT_(_res_, __LINE__).ok())           \
    return ORPHEUS_CONCAT_(_res_, __LINE__).status();   \
  lhs = ORPHEUS_CONCAT_(_res_, __LINE__).MoveValueOrDie()

#define ORPHEUS_CONCAT_IMPL_(a, b) a##b
#define ORPHEUS_CONCAT_(a, b) ORPHEUS_CONCAT_IMPL_(a, b)

}  // namespace orpheus

#endif  // ORPHEUS_COMMON_RESULT_H_
