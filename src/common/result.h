#ifndef ORPHEUS_COMMON_RESULT_H_
#define ORPHEUS_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/status.h"

namespace orpheus {

/// Result<T> holds either a value of type T or an error Status.
///
/// Usage:
///   Result<VersionId> r = cvd.Commit(...);
///   if (!r.ok()) return r.status();
///   VersionId vid = r.ValueOrDie();
///
/// Result is [[nodiscard]] (see Status); value access on an error result
/// aborts with the contained error message in every build mode — an
/// unchecked ValueOrDie never degrades to undefined behavior in release
/// builds.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure). Wrapping an OK
  /// status would leave the error arm claiming success; it aborts.
  Result(Status status) : var_(std::move(status)) {  // NOLINT
    if (std::get<Status>(var_).ok()) {
      internal::ResultBadAccess(std::get<Status>(var_),
                                "constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  /// The contained error, or a shared OK constant for successful results.
  /// The constant is namespace-level (common/status.h), safe under
  /// concurrent access from multiple threads.
  const Status& status() const {
    if (ok()) return internal::kOkStatus;
    return std::get<Status>(var_);
  }

  const T& ValueOrDie() const {
    DieUnlessOk("ValueOrDie");
    return std::get<T>(var_);
  }
  T& ValueOrDie() {
    DieUnlessOk("ValueOrDie");
    return std::get<T>(var_);
  }

  /// Move the contained value out; only valid when ok().
  T MoveValueOrDie() {
    DieUnlessOk("MoveValueOrDie");
    return std::move(std::get<T>(var_));
  }

  const T& operator*() const { return ValueOrDie(); }
  T& operator*() { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void DieUnlessOk(const char* op) const {
    if (!ok()) internal::ResultBadAccess(std::get<Status>(var_), op);
  }

  std::variant<T, Status> var_;
};

/// Assign the value of a Result expression to `lhs`, propagating errors.
#define ORPHEUS_ASSIGN_OR_RETURN(lhs, expr)      \
  auto ORPHEUS_CONCAT_(_res_, __LINE__) = (expr);       \
  if (!ORPHEUS_CONCAT_(_res_, __LINE__).ok())           \
    return ORPHEUS_CONCAT_(_res_, __LINE__).status();   \
  lhs = ORPHEUS_CONCAT_(_res_, __LINE__).MoveValueOrDie()

#define ORPHEUS_CONCAT_IMPL_(a, b) a##b
#define ORPHEUS_CONCAT_(a, b) ORPHEUS_CONCAT_IMPL_(a, b)

}  // namespace orpheus

#endif  // ORPHEUS_COMMON_RESULT_H_
