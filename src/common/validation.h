#ifndef ORPHEUS_COMMON_VALIDATION_H_
#define ORPHEUS_COMMON_VALIDATION_H_

#include <string>
#include <vector>

namespace orpheus {

/// One broken invariant, with enough context to locate it: the subsystem
/// ("version_graph", "partition_store", ...), the object inside it
/// ("partition 3", "version 7"), and what is wrong.
struct Violation {
  std::string component;
  std::string context;
  std::string message;

  std::string ToString() const;
};

/// Accumulator for invariant violations. Validators append every violation
/// they find instead of stopping at the first, so `fsck` can present the
/// complete damage picture of a corrupted store in one pass.
class ValidationReport {
 public:
  void Add(std::string component, std::string context, std::string message) {
    violations_.push_back(
        {std::move(component), std::move(context), std::move(message)});
  }

  bool ok() const { return violations_.empty(); }
  size_t num_violations() const { return violations_.size(); }
  const std::vector<Violation>& violations() const { return violations_; }

  /// All violations, one per line; "ok" when clean.
  std::string ToString() const;

 private:
  std::vector<Violation> violations_;
};

/// True when ORPHEUS_VALIDATE=1 (or any nonempty value other than "0") is
/// set in the environment: mutating operations then re-validate their
/// structures and abort on the first broken invariant. Read once at startup.
bool ValidationEnabled();

/// Abort with the full report when it contains violations (no-op when
/// clean). `where` names the operation whose post-state failed validation.
void DieIfViolations(const ValidationReport& report, const char* where);

}  // namespace orpheus

#endif  // ORPHEUS_COMMON_VALIDATION_H_
