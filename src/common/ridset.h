#ifndef ORPHEUS_COMMON_RIDSET_H_
#define ORPHEUS_COMMON_RIDSET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace orpheus {

/// RidSet: a compressed, immutable, sorted set of int64 record/version ids —
/// the canonical representation for the paper's rlist/vlist versioning
/// attributes (Sec. 4). Values are partitioned into 64K-value chunks keyed by
/// `value >> 16`; each chunk stores its low 16 bits in one of three
/// roaring-style containers, whichever is smallest:
///
///   kArray   sorted uint16 values, bit-width-adaptively packed on disk
///            (2 bytes/value in memory; ceil(width/8) on disk)
///   kBitmap  1024 x uint64 words (8192 bytes, dense chunks)
///   kRun     sorted (start, last) uint16 interval pairs (4 bytes/run)
///
/// Container choice is deterministic from the chunk contents (promotion
/// thresholds in MakeCanonical), so two RidSets holding the same values are
/// structurally identical and operator== is a cheap representation compare.
///
/// Instances are immutable after construction; share them via
/// std::shared_ptr<const RidSet>. Mutation happens by building a new set
/// (WithAppended, Intersect, ...). Materialized() lazily caches a plain
/// std::vector<int64_t> view for legacy callers.
class RidSet {
 public:
  enum class ContainerType : uint8_t { kArray = 0, kBitmap = 1, kRun = 2 };

  /// One 64K-value chunk. Exactly one payload vector is populated, matching
  /// `type`. Never empty (cardinality >= 1) when stored in a RidSet.
  struct Container {
    int64_t key = 0;  // value >> 16 (arithmetic shift; negative keys valid)
    ContainerType type = ContainerType::kArray;
    uint32_t cardinality = 0;
    std::vector<uint16_t> u16;     // kArray: values; kRun: (start,last) pairs
    std::vector<uint64_t> words;   // kBitmap: exactly 1024 words

    bool operator==(const Container& o) const = default;
  };

  RidSet() = default;

  /// Build from a strictly ascending (sorted, duplicate-free) value list.
  /// Precondition checked with assert in debug builds.
  static RidSet FromSorted(const std::vector<int64_t>& sorted_unique);

  /// Build a shared compressed set from `v` iff it is strictly ascending
  /// and has at least `min_size` elements; nullptr otherwise (caller keeps
  /// the plain vector). `min_size` defaults to the break-even point below
  /// which the container header overhead exceeds the raw encoding.
  static std::shared_ptr<const RidSet> TryFromVector(
      const std::vector<int64_t>& v, size_t min_size = kMinCompressElems);

  /// Below this many elements a plain vector is smaller than any container.
  static constexpr size_t kMinCompressElems = 8;

  /// Assemble a set from ready-made canonical containers (ascending by key,
  /// none empty). Used by the set-algebra kernels; callers elsewhere should
  /// go through FromSorted.
  static RidSet FromContainers(std::vector<Container> containers);

  size_t size() const { return cardinality_; }
  bool empty() const { return cardinality_ == 0; }

  /// O(log #chunks + log chunk-card) membership test.
  bool Contains(int64_t v) const;

  /// Membership test with a caller-held container-index hint; scans that
  /// probe runs of nearby values skip the chunk binary search. `*hint` is
  /// updated to the container consulted. Thread-safe as long as each thread
  /// owns its hint.
  bool ContainsHint(int64_t v, size_t* hint) const;

  RidSet Intersect(const RidSet& other) const;
  RidSet Union(const RidSet& other) const;
  RidSet Difference(const RidSet& other) const;

  /// Copy of this set with `v` added (no-op copy if already present).
  RidSet WithAppended(int64_t v) const;

  /// Checkout kernel: `rids[0..n)` is an ascending rid column; append to
  /// `rows_out` every index r (plus `base_row`) with rids[r] in this set, in
  /// ascending order. Works container-at-a-time: bitmap chunks test bits,
  /// sparse array chunks gallop via binary search, run chunks bulk-emit
  /// contiguous index ranges — no decompression.
  void IntersectToRows(const int64_t* rids, size_t n,
                       std::vector<uint32_t>* rows_out,
                       uint32_t base_row = 0) const;

  /// Decompress to a fresh ascending vector.
  std::vector<int64_t> ToVector() const;

  /// Lazily materialized plain view for legacy callers; built once under a
  /// lock, immutable afterwards.
  const std::vector<int64_t>& Materialized() const;

  /// In-memory footprint mirroring StorageBytes accounting: per-container
  /// header plus payload bytes.
  uint64_t SizeBytes() const;

  /// Structural self-check: chunk keys strictly ascending, no empty
  /// containers, payload shape/cardinality agreement, arrays strictly
  /// sorted, runs sorted/disjoint/non-adjacent, canonical container choice.
  Status Validate() const;

  /// Canonical form makes structural equality == set equality.
  bool operator==(const RidSet& o) const { return containers_ == o.containers_; }
  bool operator!=(const RidSet& o) const { return !(*this == o); }

  const std::vector<Container>& containers() const { return containers_; }

  /// Serialize to the on-disk chunk layout (DESIGN.md Sec. 11): u32 chunk
  /// count, then per chunk i64 key, u8 type, u32 cardinality and a payload —
  /// arrays bit-packed at the chunk's adaptive width, bitmaps raw 8192
  /// bytes, runs raw u16 pairs. Little-endian throughout.
  std::string SerializeBlob() const;
  static Result<RidSet> DeserializeBlob(std::string_view blob);

 private:
  friend class RidSetTestAccess;

  std::vector<Container> containers_;  // strictly ascending by key
  size_t cardinality_ = 0;
  // Lazy Materialized() cache; guarded by a global mutex in ridset.cc.
  mutable std::shared_ptr<const std::vector<int64_t>> materialized_;
};

/// Global gate for the compressed representation (checked at insert sites).
/// Initialized from ORPHEUS_RIDSET (default on); SetRidSetEnabled overrides
/// it programmatically so benches can compare both modes in one process.
bool RidSetEnabled();
void SetRidSetEnabled(bool enabled);

}  // namespace orpheus

#endif  // ORPHEUS_COMMON_RIDSET_H_
