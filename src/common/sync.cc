#include "common/sync.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"

namespace orpheus {

namespace sync_internal {

std::atomic<bool> g_deadlock_active{false};

namespace {

// The detector's own state is guarded by a raw std::mutex: it cannot use
// the wrappers it instruments (every Lock would recurse into the detector).
// This file is the sanctioned home for raw std:: sync primitives.

struct HeldLock {
  const void* mu;
  const char* name;
  int rank;
};

/// The calling thread's held-lock stack, maintained only while the
/// detector is active. Plain thread_local: touched by its owner only.
thread_local std::vector<HeldLock> t_held;

/// Monotone per-thread id for abort reports (std::thread::id prints as an
/// opaque hash; a small ordinal reads better in a two-stack dump).
int ThreadId() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// One recorded lock-order edge held -> acquired, with the acquisition
/// stack captured the first time the order was observed.
struct EdgeInfo {
  std::string stack;
};

std::mutex& GraphMu() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

/// held -> acquired edges. std::map with pair keys: equal_range on the
/// first element gives a node's out-edges for the DFS. Leaked, like every
/// common/ singleton.
using EdgeMap = std::map<std::pair<const void*, const void*>, EdgeInfo>;
EdgeMap& Edges() {
  static EdgeMap* edges = new EdgeMap();
  return *edges;
}

std::string DescribeLock(const char* name, const void* mu, int rank) {
  char buf[128];
  if (rank != lock_rank::kUnranked) {
    std::snprintf(buf, sizeof(buf), "\"%s\" (rank %d, %p)", name, rank, mu);
  } else {
    std::snprintf(buf, sizeof(buf), "\"%s\" (unranked, %p)", name, mu);
  }
  return buf;
}

std::string DescribeHeldStack() {
  if (t_held.empty()) return "(nothing)";
  std::string out;
  for (const HeldLock& h : t_held) {
    if (!out.empty()) out += " -> ";
    out += DescribeLock(h.name, h.mu, h.rank);
  }
  return out;
}

std::string DescribeAcquisition(const char* name, const void* mu, int rank) {
  std::string out = "thread " + std::to_string(ThreadId()) + " acquired " +
                    DescribeLock(name, mu, rank) + " while holding " +
                    DescribeHeldStack();
  return out;
}

[[noreturn]] void Die(const std::string& report) {
  std::fputs(report.c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

/// DFS over the lock-order graph: is `target` reachable from `start`? On
/// success, *path receives the edge chain start -> ... -> target. Caller
/// holds GraphMu().
bool PathExists(const void* start, const void* target,
                std::vector<EdgeMap::const_iterator>* path) {
  std::map<const void*, EdgeMap::const_iterator> parent;  // node -> in-edge
  std::vector<const void*> frontier{start};
  std::map<const void*, bool> visited;
  visited[start] = true;
  const EdgeMap& edges = Edges();
  while (!frontier.empty()) {
    const void* node = frontier.back();
    frontier.pop_back();
    for (auto it = edges.lower_bound({node, nullptr});
         it != edges.end() && it->first.first == node; ++it) {
      const void* next = it->first.second;
      if (visited[next]) continue;
      visited[next] = true;
      parent.emplace(next, it);
      if (next == target) {
        // Walk the in-edges back from target to start.
        std::vector<EdgeMap::const_iterator> rev;
        for (const void* at = target; at != start;) {
          auto in_edge = parent.at(at);
          rev.push_back(in_edge);
          at = in_edge->first.first;
        }
        path->assign(rev.rbegin(), rev.rend());
        return true;
      }
      frontier.push_back(next);
    }
  }
  return false;
}

}  // namespace

void OnAcquire(const void* mu, const char* name, int rank) {
  // Re-acquiring a held (non-recursive) mutex deadlocks this thread alone.
  for (const HeldLock& h : t_held) {
    if (h.mu == mu) {
      Die("orpheus sync: SELF-DEADLOCK\n  thread " +
          std::to_string(ThreadId()) + " re-acquiring held mutex " +
          DescribeLock(name, mu, rank) + "\n  held stack: " +
          DescribeHeldStack() + "\n");
    }
  }
  // Rank discipline: ranks must be acquired in strictly increasing order.
  if (rank != lock_rank::kUnranked) {
    for (const HeldLock& h : t_held) {
      if (h.rank != lock_rank::kUnranked && h.rank >= rank) {
        Die("orpheus sync: LOCK RANK VIOLATION\n  thread " +
            std::to_string(ThreadId()) + " acquiring " +
            DescribeLock(name, mu, rank) + "\n  while holding " +
            DescribeLock(h.name, h.mu, h.rank) +
            "\n  held stack: " + DescribeHeldStack() +
            "\n  ranked mutexes must be acquired in strictly increasing "
            "rank order (lock_rank table in common/sync.h)\n");
      }
    }
  }
  // Lock-order graph: record held -> mu edges; a new edge that makes `held`
  // reachable *from* mu closes a cycle — the ABBA pattern, caught on the
  // potential inversion even when no thread is currently blocked.
  if (!t_held.empty()) {
    std::lock_guard<std::mutex> lock(GraphMu());
    for (const HeldLock& h : t_held) {
      auto key = std::make_pair(h.mu, mu);
      if (Edges().find(key) != Edges().end()) continue;  // already proven
      std::vector<EdgeMap::const_iterator> path;
      if (PathExists(mu, h.mu, &path)) {
        std::string report =
            "orpheus sync: LOCK-ORDER CYCLE (potential deadlock)\n"
            "  this acquisition: thread " +
            std::to_string(ThreadId()) + " acquiring " +
            DescribeLock(name, mu, rank) + "\n  while holding " +
            DescribeHeldStack() + "\n  conflicting prior acquisition(s):\n";
        for (const auto& edge : path) {
          report += "    " + edge->second.stack + "\n";
        }
        Die(report);
      }
      Edges().emplace(key, EdgeInfo{DescribeAcquisition(name, mu, rank)});
    }
  }
  t_held.push_back({mu, name, rank});
}

void OnAcquired(const void* mu, const char* name, int rank) {
  t_held.push_back({mu, name, rank});
}

void OnRelease(const void* mu) {
  // Unlock order need not be LIFO; drop the most recent matching entry. A
  // miss means the lock was taken before the detector was enabled.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mu == mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

void OnDestroy(const void* mu) {
  std::lock_guard<std::mutex> lock(GraphMu());
  EdgeMap& edges = Edges();
  for (auto it = edges.begin(); it != edges.end();) {
    if (it->first.first == mu || it->first.second == mu) {
      it = edges.erase(it);
    } else {
      ++it;
    }
  }
}

size_t HeldLockCountForTest() { return t_held.size(); }

namespace {

#if defined(ORPHEUS_DEADLOCK_DEBUG)
constexpr bool kDeadlockDebugDefault = true;
#else
constexpr bool kDeadlockDebugDefault = false;
#endif

// Latch the environment at static-init time so CLI runs and forked test
// children pick the detector up without code changes. Locks used earlier in
// static initialization simply go unrecorded.
const bool g_env_applied = [] {
  g_deadlock_active.store(
      ParseEnvBool("ORPHEUS_DEADLOCK_DEBUG", kDeadlockDebugDefault),
      std::memory_order_relaxed);
  return true;
}();

}  // namespace

}  // namespace sync_internal

bool DeadlockDebugEnabled() {
  return sync_internal::g_deadlock_active.load(std::memory_order_relaxed);
}

void SetDeadlockDebug(bool enabled) {
  // Quiescent-point contract: clear this thread's stack and the global
  // graph so a test (or tool) toggling the detector starts from scratch and
  // locks taken while it was off cannot leave phantom entries.
  sync_internal::t_held.clear();
  {
    std::lock_guard<std::mutex> lock(sync_internal::GraphMu());
    sync_internal::Edges().clear();
  }
  sync_internal::g_deadlock_active.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

void CondVar::Wait(Mutex* mu) {
  // The wait releases the mutex until wakeup: mirror that in the detector's
  // held stack, and re-record the reacquisition (no ordering checks — the
  // order was validated when the caller first locked it).
  if (sync_internal::DeadlockDebugActive()) sync_internal::OnRelease(mu);
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
  if (sync_internal::DeadlockDebugActive()) {
    sync_internal::OnAcquired(mu, mu->name_, mu->rank_);
  }
}

bool CondVar::WaitFor(Mutex* mu, std::chrono::nanoseconds timeout) {
  return WaitUntil(mu, std::chrono::steady_clock::now() + timeout);
}

bool CondVar::WaitUntil(Mutex* mu,
                        std::chrono::steady_clock::time_point deadline) {
  if (sync_internal::DeadlockDebugActive()) sync_internal::OnRelease(mu);
  std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
  const std::cv_status status = cv_.wait_until(lock, deadline);
  lock.release();
  if (sync_internal::DeadlockDebugActive()) {
    sync_internal::OnAcquired(mu, mu->name_, mu->rank_);
  }
  return status == std::cv_status::no_timeout;
}

}  // namespace orpheus
