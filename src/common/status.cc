#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace orpheus {

namespace internal {

void CheckOkFailed(const Status& status, const char* expr, const char* file,
                   int line) {
  std::fprintf(stderr, "%s:%d: ORPHEUS_CHECK_OK(%s) failed: %s\n", file, line,
               expr, status.ToString().c_str());
  std::abort();
}

void ResultBadAccess(const Status& status, const char* op) {
  std::fprintf(stderr, "Result<T> misuse (%s); contained status: %s\n", op,
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace orpheus
