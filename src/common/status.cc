#include "common/status.h"

#include <cstdlib>

#include "common/log.h"

namespace orpheus {

namespace internal {

void CheckOkFailed(const Status& status, const char* expr, const char* file,
                   int line) {
  // Direct Write, not LOG_ERROR: the process is about to abort, so the
  // record must reach the sink even under ORPHEUS_LOG=off.
  log::Write(log::Level::kError, file, line, "ORPHEUS_CHECK_OK failed",
             {{"expr", expr}, {"status", status.ToString()}});
  std::abort();
}

void ResultBadAccess(const Status& status, const char* op) {
  log::Write(log::Level::kError, __FILE__, __LINE__, "Result<T> misuse",
             {{"op", op}, {"status", status.ToString()}});
  std::abort();
}

}  // namespace internal

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace orpheus
