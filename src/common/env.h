#ifndef ORPHEUS_COMMON_ENV_H_
#define ORPHEUS_COMMON_ENV_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace orpheus {

/// Checked environment-variable parsing. All env reads in the engine go
/// through these helpers (tools/lint.py bans raw getenv outside common/):
/// a malformed value like ORPHEUS_THREADS="8abc" or "-3" falls back to the
/// default with one warning on stderr instead of being silently truncated
/// by atoi into a nonsense configuration.

/// Strict full-string integer parse: no leading/trailing junk, no
/// whitespace; a single leading '-' or '+' is allowed. nullopt on failure
/// or overflow.
std::optional<int64_t> ParseIntStrict(std::string_view text);

/// Read env var `name` as an integer clamped to [min_value, max_value].
/// Unset => `fallback` silently. Set but unparsable or out of range =>
/// `fallback` with a warning to stderr (once per distinct variable).
int64_t ParseEnvInt(const char* name, int64_t fallback, int64_t min_value,
                    int64_t max_value);

/// Read env var `name` as a boolean. Accepts 0/1/true/false/yes/no/on/off
/// (case-insensitive). Unset => `fallback` silently; garbage => `fallback`
/// with a warning to stderr.
bool ParseEnvBool(const char* name, bool fallback);

/// Raw getenv passthrough for string-valued variables (log sinks, file
/// paths) that need no validation. nullptr when unset. Exists so raw
/// getenv stays confined to common/env.cc (tools/lint.py raw-env rule).
const char* RawEnv(const char* name);

}  // namespace orpheus

#endif  // ORPHEUS_COMMON_ENV_H_
