#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <chrono>

#include "common/env.h"
#include "common/string_util.h"
#include "common/sync.h"

namespace orpheus::log {

namespace {

const char* LevelLetter(Level level) {
  switch (level) {
    case Level::kDebug:
      return "D";
    case Level::kInfo:
      return "I";
    case Level::kWarn:
      return "W";
    case Level::kError:
      return "E";
    case Level::kOff:
      break;
  }
  return "?";
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kDebug:
      return "debug";
    case Level::kInfo:
      return "info";
    case Level::kWarn:
      return "warn";
    case Level::kError:
      return "error";
    case Level::kOff:
      break;
  }
  return "off";
}

/// "/abs/path/to/repo/src/cli/main.cc" -> "cli/main.cc"; otherwise the
/// path's last two components.
std::string_view ShortFile(const char* file) {
  if (file == nullptr) return "?";
  std::string_view f(file);
  size_t src = f.rfind("src/");
  if (src != std::string_view::npos) return f.substr(src + 4);
  size_t slash = f.rfind('/');
  if (slash == std::string_view::npos) return f;
  size_t slash2 = f.rfind('/', slash - 1);
  return slash2 == std::string_view::npos ? f.substr(slash + 1)
                                          : f.substr(slash2 + 1);
}

/// Wall-clock UTC timestamp, second resolution: diagnostics need "when",
/// not the metrics layer's precision (that is what trace timestamps are
/// for).
void AppendTimestamp(std::string& out) {
  const std::time_t now = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  out += buf;
}

bool NeedsQuoting(std::string_view v) {
  if (v.empty()) return true;
  for (char c : v) {
    if (c == ' ' || c == '=' || c == '"' || c == '\\' ||
        static_cast<unsigned char>(c) < 0x20) {
      return true;
    }
  }
  return false;
}

class Logger {
 public:
  static Logger& Global() {
    // Leaked, like the other common/ singletons: logging from static
    // destructors and abort handlers must stay safe.
    static Logger* logger = new Logger();
    return *logger;
  }

  Level level() const { return level_.load(std::memory_order_relaxed); }
  void set_level(Level level) {
    level_.store(level, std::memory_order_relaxed);
  }
  void set_capture(std::string* capture) {
    MutexLock lock(&mu_);
    capture_ = capture;
  }

  void Write(Level level, const char* file, int line, std::string_view msg,
             const Field* fields, size_t num_fields) {
    std::string record;
    record.reserve(96 + msg.size() + 24 * num_fields);
    // json_ is read before the lock (rendering happens outside it), so it
    // is atomic rather than mu_-guarded.
    if (json_.load(std::memory_order_relaxed)) {
      RenderJson(record, level, file, line, msg, fields, num_fields);
    } else {
      RenderText(record, level, file, line, msg, fields, num_fields);
    }
    record += '\n';
    MutexLock lock(&mu_);
    if (!config_warning_.empty()) {
      // A warning produced while this logger configured itself (bad
      // ORPHEUS_LOG value, unwritable ORPHEUS_LOG_FILE) could not be
      // logged recursively; emit it ahead of the first real record.
      std::string pending;
      pending.swap(config_warning_);
      if (capture_ != nullptr) {
        *capture_ += pending;
      } else {
        std::fputs(pending.c_str(), sink_);
      }
    }
    if (capture_ != nullptr) {
      *capture_ += record;
      return;
    }
    std::fputs(record.c_str(), sink_);
    std::fflush(sink_);
  }

  /// Re-run environment configuration (test hook). Resets level, format,
  /// and sink to their defaults first, closing a previously opened file
  /// sink, so a test can flip ORPHEUS_LOG_FILE/ORPHEUS_LOG and observe
  /// exactly what a fresh process would do.
  void ReinitFromEnv() {
    MutexLock lock(&mu_);
    if (sink_ != stderr) {
      std::fclose(sink_);
    }
    set_level(Level::kInfo);
    json_.store(false, std::memory_order_relaxed);
    sink_ = stderr;
    config_warning_.clear();
    ConfigureFromEnv();
  }

 private:
  Logger() {
    MutexLock lock(&mu_);
    ConfigureFromEnv();
  }

  void ConfigureFromEnv() ORPHEUS_REQUIRES(mu_) {
    // Configure from the environment. String-valued variables never warn,
    // so reading them here cannot recurse into the logger; anything worth
    // complaining about is stashed in config_warning_ and emitted with the
    // first record.
    if (const char* raw = RawEnv("ORPHEUS_LOG")) {
      std::string v = ToLower(raw);
      if (v == "debug") {
        level_ = Level::kDebug;
      } else if (v == "info" || v.empty()) {
        level_ = Level::kInfo;
      } else if (v == "warn" || v == "warning") {
        level_ = Level::kWarn;
      } else if (v == "error") {
        level_ = Level::kError;
      } else if (v == "off" || v == "none" || v == "quiet") {
        level_ = Level::kOff;
      } else {
        config_warning_ += "warning: ignoring ORPHEUS_LOG='" + std::string(raw) +
                           "' (want debug/info/warn/error/off)\n";
      }
    }
    if (const char* raw = RawEnv("ORPHEUS_LOG_FORMAT")) {
      std::string v = ToLower(raw);
      if (v == "json") {
        json_ = true;
      } else if (v != "text" && !v.empty()) {
        config_warning_ += "warning: ignoring ORPHEUS_LOG_FORMAT='" +
                           std::string(raw) + "' (want text/json)\n";
      }
    }
    if (const char* raw = RawEnv("ORPHEUS_LOG_FILE")) {
      if (raw[0] != '\0') {
        FILE* f = std::fopen(raw, "a");
        if (f != nullptr) {
          sink_ = f;
        } else {
          config_warning_ += "warning: cannot open ORPHEUS_LOG_FILE='" +
                             std::string(raw) + "'; logging to stderr\n";
        }
      }
    }
  }

  void RenderText(std::string& out, Level level, const char* file, int line,
                  std::string_view msg, const Field* fields,
                  size_t num_fields) {
    out += '[';
    AppendTimestamp(out);
    out += "] ";
    out += LevelLetter(level);
    out += ' ';
    out += ShortFile(file);
    out += ':';
    out += std::to_string(line);
    out += ' ';
    out += msg;
    for (size_t i = 0; i < num_fields; ++i) {
      out += ' ';
      out += fields[i].key;
      out += '=';
      if (fields[i].quoted && NeedsQuoting(fields[i].value)) {
        AppendJsonEscaped(out, fields[i].value);
      } else {
        out += fields[i].value;
      }
    }
  }

  void RenderJson(std::string& out, Level level, const char* file, int line,
                  std::string_view msg, const Field* fields,
                  size_t num_fields) {
    out += "{\"ts\":\"";
    AppendTimestamp(out);
    out += "\",\"level\":\"";
    out += LevelName(level);
    out += "\",\"src\":\"";
    out += ShortFile(file);
    out += ':';
    out += std::to_string(line);
    out += "\",\"msg\":";
    AppendJsonEscaped(out, msg);
    for (size_t i = 0; i < num_fields; ++i) {
      out += ',';
      AppendJsonEscaped(out, fields[i].key);
      out += ':';
      if (fields[i].quoted) {
        AppendJsonEscaped(out, fields[i].value);
      } else {
        out += fields[i].value;
      }
    }
    out += '}';
  }

  // level_ and json_ are read on every log site *before* the lock (Enabled
  // filtering and record rendering must not serialize), so they are atomics
  // rather than mu_-guarded. Previously both were plain fields: the
  // unlocked reads raced set_level/ReinitFromEnv.
  std::atomic<Level> level_{Level::kInfo};
  std::atomic<bool> json_{false};
  Mutex mu_{"log.logger", lock_rank::kLogger};
  FILE* sink_ ORPHEUS_GUARDED_BY(mu_) = stderr;
  std::string* capture_ ORPHEUS_GUARDED_BY(mu_) = nullptr;
  std::string config_warning_ ORPHEUS_GUARDED_BY(mu_);
};

}  // namespace

Field::Field(std::string_view k, double v)
    : key(k), value(StrFormat("%.6g", v)), quoted(false) {}

bool Enabled(Level level) {
  return static_cast<int>(level) >= static_cast<int>(Logger::Global().level());
}

void Write(Level level, const char* file, int line, std::string_view msg,
           std::initializer_list<Field> fields) {
  Logger::Global().Write(level, file, line, msg, fields.begin(),
                         fields.size());
}

void Write(Level level, const char* file, int line, std::string_view msg) {
  Logger::Global().Write(level, file, line, msg, nullptr, 0);
}

void WriteV(Level level, const char* file, int line, std::string_view msg,
            const std::vector<Field>& fields) {
  Logger::Global().Write(level, file, line, msg, fields.data(),
                         fields.size());
}

uint64_t SlowOpThresholdMs() {
  static const uint64_t threshold = static_cast<uint64_t>(
      ParseEnvInt("ORPHEUS_SLOW_OP_MS", 0, 0, 86400000));
  return threshold;
}

void SetLevelForTest(Level level) { Logger::Global().set_level(level); }

void CaptureForTest(std::string* capture) {
  Logger::Global().set_capture(capture);
}

void ReinitFromEnvForTest() { Logger::Global().ReinitFromEnv(); }

}  // namespace orpheus::log
