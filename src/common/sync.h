#ifndef ORPHEUS_COMMON_SYNC_H_
#define ORPHEUS_COMMON_SYNC_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// Annotated synchronization layer (DESIGN.md §12).
///
/// Every mutex, reader-writer lock, and condition variable in src/ goes
/// through the wrappers below instead of the raw std:: primitives (enforced
/// by the tools/lint.py `raw-sync` rule). The wrappers buy two things:
///
///   1. **Compile-time race detection.** Each wrapper carries Clang
///      thread-safety capability attributes, so a field annotated
///      ORPHEUS_GUARDED_BY(mu_) that is touched without holding mu_, or a
///      REQUIRES method called without its lock, is a *compile error* under
///      `clang++ -Wthread-safety -Werror=thread-safety` (the CI
///      thread-safety job). Under GCC the attribute macros expand to
///      nothing and the wrappers cost exactly one forwarded call.
///
///   2. **Runtime lock-order deadlock detection.** Every Mutex optionally
///      carries a name and a rank from the lock_rank table below. With the
///      detector enabled (ORPHEUS_DEADLOCK_DEBUG=1 in the environment, or
///      building with -DORPHEUS_DEADLOCK_DEBUG), each thread tracks its
///      held-lock stack; acquiring a ranked mutex while holding one of
///      equal or higher rank, re-acquiring a held mutex, or closing a cycle
///      in the global lock-order graph (the classic ABBA pattern, caught on
///      the *potential*, not the actual deadlock) aborts the process with
///      both acquisition stacks. Disabled — the default — every lock pays
///      one relaxed atomic load and a predicted-false branch; no state is
///      recorded.
///
/// Conventions:
///   - Name every long-lived mutex ("subsystem.what") and rank it in the
///     lock_rank table. Short-lived local mutexes may stay anonymous and
///     unranked (they still participate in ABBA cycle detection).
///   - Annotate every guarded field with ORPHEUS_GUARDED_BY(mu_) and every
///     method that assumes the lock with ORPHEUS_REQUIRES(mu_).
///   - Prefer MutexLock/ReaderMutexLock RAII over manual Lock/Unlock.
///   - ORPHEUS_NO_THREAD_SAFETY_ANALYSIS is reserved for the internals of
///     this layer; it must not appear anywhere else in src/.

// ---------------------------------------------------------------------------
// Clang thread-safety attribute macros (no-ops under GCC/MSVC).
// ---------------------------------------------------------------------------

#if defined(__clang__) && !defined(SWIG)
#define ORPHEUS_TS_ATTRIBUTE_(x) __attribute__((x))
#else
#define ORPHEUS_TS_ATTRIBUTE_(x)
#endif

/// On a class: instances are lockable capabilities ("mutex").
#define ORPHEUS_CAPABILITY(x) ORPHEUS_TS_ATTRIBUTE_(capability(x))

/// On a class: RAII object that acquires in its ctor, releases in its dtor.
#define ORPHEUS_SCOPED_CAPABILITY ORPHEUS_TS_ATTRIBUTE_(scoped_lockable)

/// On a field: reads and writes require holding the named mutex.
#define ORPHEUS_GUARDED_BY(x) ORPHEUS_TS_ATTRIBUTE_(guarded_by(x))

/// On a pointer field: the *pointee* is guarded by the named mutex.
#define ORPHEUS_PT_GUARDED_BY(x) ORPHEUS_TS_ATTRIBUTE_(pt_guarded_by(x))

/// On a mutex member: documents static acquisition order.
#define ORPHEUS_ACQUIRED_BEFORE(...) \
  ORPHEUS_TS_ATTRIBUTE_(acquired_before(__VA_ARGS__))
#define ORPHEUS_ACQUIRED_AFTER(...) \
  ORPHEUS_TS_ATTRIBUTE_(acquired_after(__VA_ARGS__))

/// On a function: the caller must hold the named mutex(es).
#define ORPHEUS_REQUIRES(...) \
  ORPHEUS_TS_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define ORPHEUS_REQUIRES_SHARED(...) \
  ORPHEUS_TS_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

/// On a function: acquires / releases the named mutex(es).
#define ORPHEUS_ACQUIRE(...) \
  ORPHEUS_TS_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define ORPHEUS_ACQUIRE_SHARED(...) \
  ORPHEUS_TS_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))
#define ORPHEUS_RELEASE(...) \
  ORPHEUS_TS_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define ORPHEUS_RELEASE_SHARED(...) \
  ORPHEUS_TS_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))
#define ORPHEUS_TRY_ACQUIRE(...) \
  ORPHEUS_TS_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))
#define ORPHEUS_TRY_ACQUIRE_SHARED(...) \
  ORPHEUS_TS_ATTRIBUTE_(try_acquire_shared_capability(__VA_ARGS__))

/// On a function: the caller must NOT hold the named mutex(es).
#define ORPHEUS_EXCLUDES(...) ORPHEUS_TS_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// On a function: asserts (at runtime, for the analysis) that the lock is
/// held without acquiring it.
#define ORPHEUS_ASSERT_CAPABILITY(x) ORPHEUS_TS_ATTRIBUTE_(assert_capability(x))

/// On a function returning a mutex reference: names the returned capability.
#define ORPHEUS_RETURN_CAPABILITY(x) ORPHEUS_TS_ATTRIBUTE_(lock_returned(x))

/// Escape hatch. Only sanctioned inside common/sync.{h,cc}.
#define ORPHEUS_NO_THREAD_SAFETY_ANALYSIS \
  ORPHEUS_TS_ATTRIBUTE_(no_thread_safety_analysis)

namespace orpheus {

// ---------------------------------------------------------------------------
// Lock ranks: the global acquisition order (DESIGN.md §12 has the table).
//
// A thread may only acquire a ranked mutex whose rank is STRICTLY GREATER
// than every ranked mutex it already holds; the deadlock detector aborts on
// violations. Ranks are spaced by 10 so a new subsystem slots in without
// renumbering. Equal-rank mutexes (the metrics shards) must never be held
// together. Rank 0 (kUnranked) opts out of rank checks but still
// participates in cycle detection.
// ---------------------------------------------------------------------------

namespace lock_rank {
inline constexpr int kUnranked = 0;
inline constexpr int kNetServer = 1;         // net/server.cc (session registry)
inline constexpr int kSessionCommit = 2;     // session/session.cc (committer)
inline constexpr int kSessionData = 5;       // session/session.cc (CVD state)
inline constexpr int kRepository = 10;       // storage/repository.cc
inline constexpr int kThreadPool = 20;       // common/thread_pool.cc (queue)
inline constexpr int kTaskGroup = 30;        // common/thread_pool.cc (groups)
inline constexpr int kRidSetMaterialize = 40;  // common/ridset.cc
inline constexpr int kTraceRegistry = 50;    // common/trace.cc
inline constexpr int kFailpointRegistry = 60;  // common/failpoint.cc
inline constexpr int kEnvWarnOnce = 70;      // common/env.cc
inline constexpr int kLogger = 80;           // common/log.cc
inline constexpr int kMetricsShard = 90;     // common/metrics.h (16 shards)
}  // namespace lock_rank

namespace sync_internal {

/// Master switch for the lock-order detector. Latched from the
/// ORPHEUS_DEADLOCK_DEBUG environment variable (default: the
/// -DORPHEUS_DEADLOCK_DEBUG compile flag, else off) during static
/// initialization; SetDeadlockDebug flips it at quiescent points.
extern std::atomic<bool> g_deadlock_active;

inline bool DeadlockDebugActive() {
  return g_deadlock_active.load(std::memory_order_relaxed);
}

/// Detector hooks, out-of-line so the disabled fast path stays one load +
/// branch. OnAcquire runs *before* blocking on the lock (so a detected
/// cycle aborts instead of deadlocking); OnAcquired records a lock obtained
/// without ordering checks (TryLock success, CondVar re-acquire).
void OnAcquire(const void* mu, const char* name, int rank);
void OnAcquired(const void* mu, const char* name, int rank);
void OnRelease(const void* mu);
/// Drops every lock-order-graph edge touching `mu` (called from wrapper
/// destructors so a recycled stack address cannot alias a dead mutex).
void OnDestroy(const void* mu);

/// Number of locks the calling thread currently holds according to the
/// detector (always 0 while the detector is off).
size_t HeldLockCountForTest();

}  // namespace sync_internal

/// True while the runtime lock-order detector is recording.
bool DeadlockDebugEnabled();

/// Enable/disable the detector. Call only at quiescent points (no locks
/// held anywhere): disabling clears the calling thread's held stack and the
/// global lock-order graph.
void SetDeadlockDebug(bool enabled);

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Annotated std::mutex. Constexpr-constructible, so namespace-scope
/// instances are immune to static-initialization-order problems.
class ORPHEUS_CAPABILITY("mutex") Mutex {
 public:
  constexpr Mutex() noexcept = default;
  /// Named + ranked: participates in the detector's rank checks and shows
  /// up by name in abort reports. `name` must be a string literal (or
  /// otherwise outlive the mutex).
  constexpr explicit Mutex(const char* name,
                           int rank = lock_rank::kUnranked) noexcept
      : name_(name), rank_(rank) {}

  ~Mutex() {
    if (sync_internal::DeadlockDebugActive()) sync_internal::OnDestroy(this);
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ORPHEUS_ACQUIRE() {
    if (sync_internal::DeadlockDebugActive()) {
      sync_internal::OnAcquire(this, name_, rank_);
    }
    mu_.lock();
  }

  void Unlock() ORPHEUS_RELEASE() {
    mu_.unlock();
    if (sync_internal::DeadlockDebugActive()) sync_internal::OnRelease(this);
  }

  /// Never blocks, so the detector records a success without ordering
  /// checks (a try-lock cannot close a deadlock cycle by itself).
  bool TryLock() ORPHEUS_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    if (sync_internal::DeadlockDebugActive()) {
      sync_internal::OnAcquired(this, name_, rank_);
    }
    return true;
  }

  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const char* name_ = "mutex";
  int rank_ = lock_rank::kUnranked;
};

// ---------------------------------------------------------------------------
// SharedMutex
// ---------------------------------------------------------------------------

/// Annotated std::shared_mutex. Reader acquisitions participate in the
/// deadlock detector exactly like exclusive ones (conservative: a
/// reader/reader inversion is flagged even though it only deadlocks once a
/// writer joins the party).
class ORPHEUS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() noexcept = default;
  explicit SharedMutex(const char* name,
                       int rank = lock_rank::kUnranked) noexcept
      : name_(name), rank_(rank) {}

  ~SharedMutex() {
    if (sync_internal::DeadlockDebugActive()) sync_internal::OnDestroy(this);
  }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ORPHEUS_ACQUIRE() {
    if (sync_internal::DeadlockDebugActive()) {
      sync_internal::OnAcquire(this, name_, rank_);
    }
    mu_.lock();
  }

  void Unlock() ORPHEUS_RELEASE() {
    mu_.unlock();
    if (sync_internal::DeadlockDebugActive()) sync_internal::OnRelease(this);
  }

  bool TryLock() ORPHEUS_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    if (sync_internal::DeadlockDebugActive()) {
      sync_internal::OnAcquired(this, name_, rank_);
    }
    return true;
  }

  void ReaderLock() ORPHEUS_ACQUIRE_SHARED() {
    if (sync_internal::DeadlockDebugActive()) {
      sync_internal::OnAcquire(this, name_, rank_);
    }
    mu_.lock_shared();
  }

  void ReaderUnlock() ORPHEUS_RELEASE_SHARED() {
    mu_.unlock_shared();
    if (sync_internal::DeadlockDebugActive()) sync_internal::OnRelease(this);
  }

  bool ReaderTryLock() ORPHEUS_TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) return false;
    if (sync_internal::DeadlockDebugActive()) {
      sync_internal::OnAcquired(this, name_, rank_);
    }
    return true;
  }

  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const char* name_ = "shared_mutex";
  int rank_ = lock_rank::kUnranked;
};

// ---------------------------------------------------------------------------
// RAII lock holders
// ---------------------------------------------------------------------------

/// Scoped exclusive lock, the default way to hold a Mutex.
class ORPHEUS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ORPHEUS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() ORPHEUS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Scoped exclusive lock on a SharedMutex (the writer side).
class ORPHEUS_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ORPHEUS_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() ORPHEUS_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class ORPHEUS_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ORPHEUS_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() ORPHEUS_RELEASE() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

/// Condition variable bound to the annotated Mutex. Waits release and
/// re-acquire the mutex (the detector's held-lock stack is kept accurate
/// across the wait). All waits can wake spuriously; callers loop on their
/// predicate or use the predicate overloads.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Block until notified (or a spurious wakeup).
  void Wait(Mutex* mu) ORPHEUS_REQUIRES(mu);

  /// Block until notified or `timeout` elapses. Returns false iff the wait
  /// timed out without a notification.
  bool WaitFor(Mutex* mu, std::chrono::nanoseconds timeout)
      ORPHEUS_REQUIRES(mu);

  /// Wait until `pred()` is true. The predicate runs with the mutex held;
  /// when it reads ORPHEUS_GUARDED_BY state, prefer an explicit
  /// `while (!cond) cv.Wait(&mu);` loop at the call site — the analysis
  /// cannot see through the predicate indirection.
  template <typename Pred>
  void Wait(Mutex* mu, Pred pred) ORPHEUS_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Wait up to `timeout` for `pred()` to become true; returns the final
  /// predicate value (true iff the condition held before the deadline).
  template <typename Pred>
  bool WaitFor(Mutex* mu, std::chrono::nanoseconds timeout, Pred pred)
      ORPHEUS_REQUIRES(mu) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!pred()) {
      if (!WaitUntil(mu, deadline)) return pred();
    }
    return true;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  /// Returns false iff the deadline passed without a notification.
  bool WaitUntil(Mutex* mu, std::chrono::steady_clock::time_point deadline)
      ORPHEUS_REQUIRES(mu);

  std::condition_variable cv_;
};

}  // namespace orpheus

#endif  // ORPHEUS_COMMON_SYNC_H_
