#ifndef ORPHEUS_COMMON_STATUS_H_
#define ORPHEUS_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace orpheus {

/// Error/status codes used across the library. We follow the RocksDB-style
/// convention: fallible operations return a Status (or a Result<T>, see
/// result.h) instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kConstraintViolation,
  kCorruption,
  kNotSupported,
  kOutOfRange,
  kInternal,
  kDataLoss,
  kDeadlineExceeded,
  kUnavailable,
};

/// A lightweight status object carrying a code and, for errors, a message.
///
/// Usage:
///   Status s = cvd.Commit(...);
///   if (!s.ok()) return s;
///
/// Status is [[nodiscard]]: every call returning one must be checked,
/// propagated (ORPHEUS_RETURN_NOT_OK), asserted (ORPHEUS_CHECK_OK), or
/// explicitly dropped (ORPHEUS_IGNORE_ERROR) — silent discards are a
/// compile error under -Werror=unused-result.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Unrecoverable loss or corruption of persisted data (torn snapshot,
  /// checksum mismatch, unparsable WAL). Unlike kCorruption — which flags
  /// damaged *in-memory* invariants — kDataLoss always refers to on-disk
  /// state and should carry the file path and byte offset.
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  /// A bounded wait ran out before the operation completed. The outcome is
  /// UNKNOWN (the work may still finish): callers must not treat this as
  /// "did not happen" — retry with an idempotency key or re-check state.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// A transient, retryable condition (peer gone, connection reset, torn
  /// frame). Distinct from kInternal so retry loops can tell "try again"
  /// from "give up": only kUnavailable and kDeadlineExceeded are safe to
  /// retry blindly.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsConstraintViolation() const {
    return code_ == StatusCode::kConstraintViolation;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable rendering, e.g. "NotFound: version 7".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Propagate a non-OK Status to the caller.
#define ORPHEUS_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::orpheus::Status _s = (expr);             \
    if (!_s.ok()) return _s;                   \
  } while (0)

namespace internal {
/// Prints the failed expression and status, then aborts. Out-of-line so the
/// macro below stays cheap at every call site.
[[noreturn]] void CheckOkFailed(const Status& status, const char* expr,
                                const char* file, int line);

/// Prints the offending operation and the contained error, then aborts.
/// Called by Result<T> accessors on misuse (value access on an error, or
/// wrapping an OK status as an error); active in all build modes so release
/// builds fail loudly instead of reading a moved-from variant.
[[noreturn]] void ResultBadAccess(const Status& status, const char* op);

/// The shared OK constant returned by Result<T>::status() for successful
/// results. A namespace-level inline constant (initialized during static
/// initialization) rather than a function-local static, so concurrent
/// readers never touch an initialization guard.
inline const Status kOkStatus = Status::OK();
}  // namespace internal

/// Abort on a non-OK Status in contexts where failure indicates a broken
/// invariant rather than bad input (e.g. building a unique index on a table
/// that is empty by construction). Unlike `(void)s`, a violated assumption
/// crashes loudly instead of silently corrupting downstream state.
#define ORPHEUS_CHECK_OK(expr)                                          \
  do {                                                                  \
    ::orpheus::Status _s = (expr);                                      \
    if (!_s.ok()) {                                                     \
      ::orpheus::internal::CheckOkFailed(_s, #expr, __FILE__, __LINE__); \
    }                                                                   \
  } while (0)

/// Deliberately drop a Status/Result. The only sanctioned way to ignore an
/// error (tools/lint.py rejects raw `(void)` casts of calls): it documents
/// intent at the call site and keeps discards greppable.
#define ORPHEUS_IGNORE_ERROR(expr) static_cast<void>(expr)

}  // namespace orpheus

#endif  // ORPHEUS_COMMON_STATUS_H_
