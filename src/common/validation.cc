#include "common/validation.h"

#include <cstdlib>

#include "common/env.h"
#include "common/log.h"

namespace orpheus {

std::string Violation::ToString() const {
  std::string out = component;
  if (!context.empty()) {
    out += " [";
    out += context;
    out += "]";
  }
  out += ": ";
  out += message;
  return out;
}

std::string ValidationReport::ToString() const {
  if (ok()) return "ok";
  std::string out;
  for (const Violation& v : violations_) {
    out += v.ToString();
    out += "\n";
  }
  return out;
}

bool ValidationEnabled() {
  static const bool enabled = ParseEnvBool("ORPHEUS_VALIDATE", false);
  return enabled;
}

void DieIfViolations(const ValidationReport& report, const char* where) {
  if (report.ok()) return;
  // Direct Write: about to abort, must not be filtered by ORPHEUS_LOG.
  log::Write(log::Level::kError, __FILE__, __LINE__,
             "ORPHEUS_VALIDATE: invariant violation(s)",
             {{"where", where},
              {"count", report.num_violations()},
              {"violations", report.ToString()}});
  std::abort();
}

}  // namespace orpheus
