#include "common/validation.h"

#include <cstdio>
#include <cstdlib>

#include "common/env.h"

namespace orpheus {

std::string Violation::ToString() const {
  std::string out = component;
  if (!context.empty()) {
    out += " [";
    out += context;
    out += "]";
  }
  out += ": ";
  out += message;
  return out;
}

std::string ValidationReport::ToString() const {
  if (ok()) return "ok";
  std::string out;
  for (const Violation& v : violations_) {
    out += v.ToString();
    out += "\n";
  }
  return out;
}

bool ValidationEnabled() {
  static const bool enabled = ParseEnvBool("ORPHEUS_VALIDATE", false);
  return enabled;
}

void DieIfViolations(const ValidationReport& report, const char* where) {
  if (report.ok()) return;
  std::fprintf(stderr,
               "ORPHEUS_VALIDATE: %zu invariant violation(s) after %s:\n%s",
               report.num_violations(), where, report.ToString().c_str());
  std::abort();
}

}  // namespace orpheus
