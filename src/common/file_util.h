#ifndef ORPHEUS_COMMON_FILE_UTIL_H_
#define ORPHEUS_COMMON_FILE_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace orpheus {

/// Crash-safe POSIX file primitives. Every durable write in the engine
/// goes through this module (tools/lint.py bans raw std::ofstream/fopen
/// writes elsewhere under src/): each operation reports failures as
/// Status instead of silently succeeding on a full disk, and each is a
/// fault-injection site (common/failpoint.h) so the crash matrix can kill
/// or fail any write/fsync/rename mid-flight.
///
/// Failpoint sites: io.open, io.write, io.write.partial (writes half the
/// buffer, then fires), io.sync, io.close, io.rename, io.dirsync,
/// io.truncate, io.remove.

/// Buffered-nothing sequential file writer over a raw fd.
class FileWriter {
 public:
  /// Create (or truncate) `path`.
  static Result<FileWriter> Create(const std::string& path);
  /// Open `path` for appending at `offset` (the file is truncated to
  /// `offset` first — WAL recovery uses this to drop a torn tail).
  static Result<FileWriter> OpenAt(const std::string& path, uint64_t offset);

  FileWriter(FileWriter&& other) noexcept;
  FileWriter& operator=(FileWriter&& other) noexcept;
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;
  /// Closing via destructor ignores errors; call Close() on paths that
  /// must observe them.
  ~FileWriter();

  Status Append(std::string_view data);
  /// fsync. A sync failure poisons the writer: later appends fail too
  /// (post-fsync-error page-cache state is unknowable — see PostgreSQL's
  /// fsyncgate — so the only safe reaction is to stop writing).
  Status Sync();
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  uint64_t offset() const { return offset_; }
  const std::string& path() const { return path_; }

 private:
  FileWriter(int fd, std::string path, uint64_t offset)
      : fd_(fd), path_(std::move(path)), offset_(offset) {}

  int fd_ = -1;
  std::string path_;
  uint64_t offset_ = 0;
  bool poisoned_ = false;
};

/// Entire file -> string. NotFound when missing, Internal on read errors.
Result<std::string> ReadFileToString(const std::string& path);

/// Durable atomic replacement: write `path`.tmp, fsync it, rename over
/// `path`, fsync the parent directory. Readers never observe a partial
/// file. With `sync` false the fsyncs are skipped (fast path for
/// non-critical exports where atomicity still matters but durability is
/// left to the OS).
Status WriteFileAtomic(const std::string& path, std::string_view data,
                       bool sync = true);

/// fsync a directory so a rename/create/unlink inside it is durable.
Status SyncDir(const std::string& dir);

/// rename(2) + fsync of the destination's parent directory.
Status AtomicRename(const std::string& from, const std::string& to);

Status RemoveFile(const std::string& path);     // NotFound when missing
bool FileExists(const std::string& path);
Result<uint64_t> FileSize(const std::string& path);

/// Truncate `path` to `size` bytes and fsync it (WAL torn-tail repair).
Status TruncateFile(const std::string& path, uint64_t size);

/// mkdir -p. OK if the directory already exists.
Status CreateDirs(const std::string& path);

/// Sorted names of regular files directly inside `dir`.
Result<std::vector<std::string>> ListDir(const std::string& dir);

/// "/a/b/c" -> "/a/b"; "c" -> ".".
std::string DirName(const std::string& path);

}  // namespace orpheus

#endif  // ORPHEUS_COMMON_FILE_UTIL_H_
