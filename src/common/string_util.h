#ifndef ORPHEUS_COMMON_STRING_UTIL_H_
#define ORPHEUS_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace orpheus {

/// Split `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Join the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Trim ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Lower-case ASCII copy.
std::string ToLower(std::string_view s);

/// Render a byte count as a human-readable string, e.g. "3.97 GB".
std::string HumanBytes(uint64_t bytes);

/// Render a duration in seconds with an adaptive unit, e.g. "53 ms", "1.7 s".
std::string HumanSeconds(double seconds);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Append `s` to `out` as a double-quoted JSON string literal, escaping
/// quotes, backslashes and control characters. Shared by the metrics,
/// trace and log JSON emitters.
void AppendJsonEscaped(std::string& out, std::string_view s);

}  // namespace orpheus

#endif  // ORPHEUS_COMMON_STRING_UTIL_H_
