#ifndef ORPHEUS_BENCHDATA_GENERATOR_H_
#define ORPHEUS_BENCHDATA_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

namespace orpheus::benchdata {

/// Parameters of the versioning benchmark of Maddox et al. [31], as used in
/// Sec. 5.5.1 (Table 5.2). SCI simulates data scientists branching from an
/// evolving mainline (version graph is a tree); CUR simulates curators who
/// branch from a canonical dataset and periodically merge back (a DAG).
struct GeneratorConfig {
  std::string name = "SCI";
  int num_versions = 1000;        // |V|
  int num_branches = 100;         // B
  int ops_per_version = 1000;     // I: inserts/updates from parent version(s)
  int num_attributes = 20;        // data attributes per record (paper: 100)
  bool curated = false;           // false => SCI (tree), true => CUR (DAG)
  double merge_prob = 0.35;       // CUR: chance a branch step merges back
  // Op mix within a commit. The benchmark favors updates/inserts over
  // deletes (Sec. 4.2 notes "only a few deleted tuples").
  double update_frac = 0.88;
  double insert_frac = 0.07;
  double delete_frac = 0.05;
  // Base version holds base_multiplier * I records. CUR versions are ~3x
  // larger on average than SCI in Table 5.2, so CUR configs use a larger
  // multiplier.
  int base_multiplier = 10;
  uint64_t seed = 42;
};

/// One version: its parent version ids (empty for the root) and the sorted
/// list of record ids it contains.
struct VersionSpec {
  std::vector<int> parents;
  std::vector<int64_t> records;  // sorted rids
};

/// A generated versioned dataset: the version graph plus, for each version,
/// its full record membership, and a deterministic rid -> payload mapping so
/// the data table can be materialized on demand.
class VersionedDataset {
 public:
  static VersionedDataset Generate(const GeneratorConfig& config);

  const GeneratorConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }

  int num_versions() const { return static_cast<int>(versions_.size()); }
  const VersionSpec& version(int i) const { return versions_[i]; }
  const std::vector<VersionSpec>& versions() const { return versions_; }

  /// Total distinct records |R| across all versions.
  int64_t num_distinct_records() const { return next_rid_; }

  /// |E| of the version-record bipartite graph: sum of version sizes.
  uint64_t num_bipartite_edges() const;

  int num_attributes() const { return config_.num_attributes; }

  /// Primary key value of record `rid`. Updates reuse the PK of the record
  /// they replace, so within one version PKs are unique while the same PK
  /// maps to different rids across versions (paper Sec. 3.1).
  int64_t PrimaryKeyOf(int64_t rid) const { return pk_of_rid_[rid]; }

  /// Deterministic data-attribute payload for `rid`: num_attributes values,
  /// the first being the primary key.
  std::vector<int64_t> RecordPayload(int64_t rid) const;

  /// Number of records shared by versions a and b (edge weight w(a,b) of the
  /// version graph). Linear merge over the sorted membership vectors.
  int64_t CommonRecords(int a, int b) const;

  /// Indices of versions with no parents (normally just {0}).
  std::vector<int> RootVersions() const;

 private:
  GeneratorConfig config_;
  std::vector<VersionSpec> versions_;
  std::vector<int64_t> pk_of_rid_;
  int64_t next_rid_ = 0;
  int64_t next_pk_ = 0;
};

/// The scaled-down counterparts of the Table 5.2 datasets used throughout
/// the bench harnesses. `scale` in (0, 1] shrinks I (and thus |R| and |E|)
/// linearly; scale=1.0 reproduces paper-sized inputs.
GeneratorConfig SciConfig(const std::string& name, int num_versions,
                          int num_branches, int ops_per_version,
                          uint64_t seed = 42);
GeneratorConfig CurConfig(const std::string& name, int num_versions,
                          int num_branches, int ops_per_version,
                          uint64_t seed = 42);

}  // namespace orpheus::benchdata

#endif  // ORPHEUS_BENCHDATA_GENERATOR_H_
