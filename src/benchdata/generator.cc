#include "benchdata/generator.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

namespace orpheus::benchdata {

namespace {

// Deterministic 64-bit mix for record payloads.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

VersionedDataset VersionedDataset::Generate(const GeneratorConfig& config) {
  VersionedDataset ds;
  ds.config_ = config;
  Xorshift rng(config.seed);

  const int kV = config.num_versions;
  const int kI = config.ops_per_version;

  auto new_record = [&ds](int64_t pk) -> int64_t {
    int64_t rid = ds.next_rid_++;
    ds.pk_of_rid_.push_back(pk);
    return rid;
  };

  // Root version: base_multiplier * I fresh records.
  VersionSpec root;
  const int base_size = std::max(1, config.base_multiplier * kI);
  root.records.reserve(base_size);
  for (int i = 0; i < base_size; ++i) {
    root.records.push_back(new_record(ds.next_pk_++));
  }
  ds.versions_.push_back(std::move(root));

  // Apply one commit's worth of operations to a copy of `parent_records`.
  auto apply_ops = [&](const std::vector<int64_t>& parent_records)
      -> std::vector<int64_t> {
    std::vector<int64_t> recs = parent_records;
    for (int op = 0; op < kI; ++op) {
      double dice = rng.NextDouble();
      if (dice < config.update_frac && !recs.empty()) {
        // Update: replace a record with a new rid carrying the same PK.
        size_t pos = rng.Uniform(recs.size());
        recs[pos] = new_record(ds.pk_of_rid_[recs[pos]]);
      } else if (dice < config.update_frac + config.insert_frac ||
                 recs.empty()) {
        recs.push_back(new_record(ds.next_pk_++));
      } else if (recs.size() > 1) {
        // Delete.
        size_t pos = rng.Uniform(recs.size());
        recs[pos] = recs.back();
        recs.pop_back();
      }
    }
    std::sort(recs.begin(), recs.end());
    return recs;
  };

  // Pre-select the commit steps at which new branches are spawned.
  std::unordered_set<uint64_t> branch_steps;
  if (config.num_branches > 1 && kV > 2) {
    for (uint64_t step :
         rng.SampleWithoutReplacement(kV - 1,
                                      std::min<uint64_t>(config.num_branches - 1,
                                                         kV - 2))) {
      branch_steps.insert(step + 1);
    }
  }

  // Active branches, identified by their current head version.
  std::vector<int> branch_heads = {0};  // branch 0 = mainline

  for (int v = 1; v < kV; ++v) {
    VersionSpec spec;
    if (branch_steps.count(static_cast<uint64_t>(v))) {
      // Spawn a branch. SCI branches "at different points on the mainline
      // as well as from other already existing branches"; CUR curators
      // branch from the canonical (recent) dataset so that merges stay
      // close to the mainline (|R̂| is 7-10% of |R| in Table 5.2).
      int src;
      if (config.curated) {
        src = rng.Bernoulli(0.7)
                  ? branch_heads[0]
                  : branch_heads[rng.Uniform(branch_heads.size())];
      } else {
        src = rng.Bernoulli(0.5)
                  ? branch_heads[rng.Uniform(branch_heads.size())]
                  : static_cast<int>(rng.Uniform(v));
      }
      spec.parents = {src};
      spec.records = apply_ops(ds.versions_[src].records);
      ds.versions_.push_back(std::move(spec));
      branch_heads.push_back(v);
      continue;
    }
    // CUR merges: prefer retiring the oldest branch so divergence stays
    // bounded.
    if (config.curated && branch_heads.size() > 1 &&
        rng.Bernoulli(config.merge_prob)) {
      // CUR: merge a side branch back into the mainline. The merged version
      // takes the union of both parents' records; on a primary-key conflict
      // the branch's record wins (precedence order, Sec. 3.3.1). The oldest
      // outstanding branch merges first.
      size_t bi = 1;
      int branch_head = branch_heads[bi];
      int mainline_head = branch_heads[0];
      spec.parents = {branch_head, mainline_head};
      std::unordered_map<int64_t, int64_t> by_pk;
      for (int64_t rid : ds.versions_[branch_head].records) {
        by_pk.emplace(ds.pk_of_rid_[rid], rid);
      }
      for (int64_t rid : ds.versions_[mainline_head].records) {
        by_pk.emplace(ds.pk_of_rid_[rid], rid);  // keeps branch rid on clash
      }
      spec.records.reserve(by_pk.size());
      for (const auto& [pk, rid] : by_pk) {
        (void)pk;
        spec.records.push_back(rid);
      }
      std::sort(spec.records.begin(), spec.records.end());
      ds.versions_.push_back(std::move(spec));
      // The merged version becomes the new mainline head; the side branch
      // is retired.
      branch_heads[0] = v;
      branch_heads.erase(branch_heads.begin() + static_cast<long>(bi));
      continue;
    }
    // Extend a branch: the mainline half the time, otherwise a random one.
    size_t bi = rng.Bernoulli(0.5) ? 0 : rng.Uniform(branch_heads.size());
    int head = branch_heads[bi];
    spec.parents = {head};
    spec.records = apply_ops(ds.versions_[head].records);
    ds.versions_.push_back(std::move(spec));
    branch_heads[bi] = v;
  }

  return ds;
}

uint64_t VersionedDataset::num_bipartite_edges() const {
  uint64_t edges = 0;
  for (const auto& v : versions_) edges += v.records.size();
  return edges;
}

std::vector<int64_t> VersionedDataset::RecordPayload(int64_t rid) const {
  std::vector<int64_t> payload(config_.num_attributes);
  payload[0] = PrimaryKeyOf(rid);
  uint64_t h = Mix64(static_cast<uint64_t>(rid) + 0x1234567ULL);
  for (int a = 1; a < config_.num_attributes; ++a) {
    h = Mix64(h + static_cast<uint64_t>(a));
    payload[a] = static_cast<int64_t>(h % 1000000);
  }
  return payload;
}

int64_t VersionedDataset::CommonRecords(int a, int b) const {
  const auto& ra = versions_[a].records;
  const auto& rb = versions_[b].records;
  int64_t common = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < ra.size() && j < rb.size()) {
    if (ra[i] < rb[j]) {
      ++i;
    } else if (ra[i] > rb[j]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

std::vector<int> VersionedDataset::RootVersions() const {
  std::vector<int> roots;
  for (int i = 0; i < num_versions(); ++i) {
    if (versions_[i].parents.empty()) roots.push_back(i);
  }
  return roots;
}

GeneratorConfig SciConfig(const std::string& name, int num_versions,
                          int num_branches, int ops_per_version,
                          uint64_t seed) {
  GeneratorConfig c;
  c.name = name;
  c.num_versions = num_versions;
  c.num_branches = num_branches;
  c.ops_per_version = ops_per_version;
  c.curated = false;
  c.base_multiplier = 10;
  c.seed = seed;
  return c;
}

GeneratorConfig CurConfig(const std::string& name, int num_versions,
                          int num_branches, int ops_per_version,
                          uint64_t seed) {
  GeneratorConfig c;
  c.name = name;
  c.num_versions = num_versions;
  c.num_branches = num_branches;
  c.ops_per_version = ops_per_version;
  c.curated = true;
  // Table 5.2: CUR versions are ~3x larger than SCI on average.
  c.base_multiplier = 30;
  c.seed = seed;
  return c;
}

}  // namespace orpheus::benchdata
