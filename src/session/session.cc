#include "session/session.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/log.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "minidb/value.h"

namespace orpheus::session {

namespace {

/// Composite-key rendering for the merge maps and conflict reports. The
/// unit separator cannot appear in rendered values' natural text, so keys
/// compare exactly like the value tuples they stand for.
constexpr char kKeySep = '\x1f';

std::string RenderKey(const minidb::Table& table,
                      const std::vector<int>& pk_cols, uint32_t row) {
  std::string key;
  for (size_t i = 0; i < pk_cols.size(); ++i) {
    if (i > 0) key.push_back(kKeySep);
    key.append(table.GetValue(row, pk_cols[i]).ToString());
  }
  return key;
}

/// Human-readable form of a stored key (separator swapped for a comma).
std::string DisplayKey(const std::string& key) {
  std::string out = key;
  std::replace(out.begin(), out.end(), kKeySep, ',');
  return out;
}

/// Data-payload equality of two rows (column 0 is _rid and is skipped).
bool SameDataPayload(const minidb::Table& a, uint32_t ra,
                     const minidb::Table& b, uint32_t rb) {
  for (size_t c = 1; c < a.num_columns(); ++c) {
    if (a.GetValue(ra, c) != b.GetValue(rb, c)) return false;
  }
  return true;
}

enum class RowState { kAbsent, kUnchanged, kModified, kAdded };

}  // namespace

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Status Session::Checkout(const std::vector<core::VersionId>& vids,
                         const std::string& table_name) {
  if (staging_.HasTable(table_name)) {
    return Status::InvalidArgument(StrFormat(
        "staging table \"%s\" already exists in session %d",
        table_name.c_str(), id_));
  }
  ORPHEUS_ASSIGN_OR_RETURN(
      minidb::Table table,
      manager_->Materialize(vids, table_name, watermark_));
  ORPHEUS_ASSIGN_OR_RETURN(minidb::Table * adopted,
                           staging_.AdoptTable(std::move(table)));
  (void)adopted;
  parents_[table_name] = vids;
  return Status::OK();
}

Result<CommitOutcome> Session::Commit(const std::string& table_name,
                                      const std::string& message,
                                      const std::string& author) {
  CommitOutcome out;
  ORPHEUS_RETURN_NOT_OK(CommitWithDeadline(table_name, message, author,
                                           Deadline::Infinite(), &out));
  return out;
}

Status Session::CommitWithDeadline(const std::string& table_name,
                                   const std::string& message,
                                   const std::string& author,
                                   const Deadline& deadline,
                                   CommitOutcome* out) {
  auto pending_it = pending_commits_.find(table_name);
  if (pending_it != pending_commits_.end()) {
    // A previous attempt timed out waiting for durability: the commit is
    // already applied, so re-wait its tickets — never re-apply (retrying
    // after a lost result must be exactly-once).
    Status s =
        manager_->WaitPendingDurable(&pending_it->second, deadline, out);
    if (s.IsDeadlineExceeded()) return s;  // still in flight; keep parked
    pending_commits_.erase(pending_it);
    ORPHEUS_RETURN_NOT_OK(s);
    ORPHEUS_RETURN_NOT_OK(staging_.DropTable(table_name));
    parents_.erase(table_name);
    watermark_ = std::max(watermark_, manager_->watermark());
    return Status::OK();
  }

  const minidb::Table* table = staging_.GetTable(table_name);
  if (table == nullptr) {
    return Status::NotFound(StrFormat(
        "no staging table \"%s\" in session %d", table_name.c_str(), id_));
  }
  auto it = parents_.find(table_name);
  if (it == parents_.end()) {
    return Status::InvalidArgument(StrFormat(
        "staging table \"%s\" has no checkout provenance in session %d",
        table_name.c_str(), id_));
  }
  PendingDurability pending;
  Status s = manager_->CommitStaged(*table, it->second, message, author,
                                    deadline, out, &pending);
  if (s.IsDeadlineExceeded()) {
    pending_commits_[table_name] = std::move(pending);
    return s;
  }
  ORPHEUS_RETURN_NOT_OK(s);
  ORPHEUS_RETURN_NOT_OK(staging_.DropTable(table_name));
  parents_.erase(it);
  // Read-your-writes: the commit is durable by now, so the manager's
  // watermark covers it — advancing the pin cannot admit anything weaker
  // than snapshot isolation.
  watermark_ = std::max(watermark_, manager_->watermark());
  return Status::OK();
}

Status Session::ReplaceStaging(const std::string& table_name,
                               minidb::Table table) {
  if (parents_.find(table_name) == parents_.end()) {
    return Status::InvalidArgument(StrFormat(
        "staging table \"%s\" has no checkout provenance in session %d",
        table_name.c_str(), id_));
  }
  if (pending_commits_.find(table_name) != pending_commits_.end()) {
    return Status::InvalidArgument(StrFormat(
        "staging table \"%s\" has a commit awaiting durability in session "
        "%d; resolve it before restaging",
        table_name.c_str(), id_));
  }
  if (table.name() != table_name) {
    return Status::InvalidArgument(StrFormat(
        "replacement table is named \"%s\", expected \"%s\"",
        table.name().c_str(), table_name.c_str()));
  }
  ORPHEUS_RETURN_NOT_OK(staging_.DropTable(table_name));
  ORPHEUS_ASSIGN_OR_RETURN(minidb::Table * adopted,
                           staging_.AdoptTable(std::move(table)));
  (void)adopted;
  return Status::OK();
}

Status Session::DiscardStaging(const std::string& table_name) {
  if (pending_commits_.find(table_name) != pending_commits_.end()) {
    return Status::InvalidArgument(StrFormat(
        "staging table \"%s\" has a commit awaiting durability in session "
        "%d; resolve it before discarding",
        table_name.c_str(), id_));
  }
  ORPHEUS_RETURN_NOT_OK(staging_.DropTable(table_name));
  parents_.erase(table_name);
  return Status::OK();
}

Result<minidb::Table> Session::Diff(core::VersionId a,
                                    core::VersionId b) const {
  return manager_->Diff(a, b, watermark_);
}

Status Session::Refresh() {
  ORPHEUS_RETURN_NOT_OK(manager_->RequireUsable());
  watermark_ = std::max(watermark_, manager_->watermark());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SessionManager
// ---------------------------------------------------------------------------

SessionManager::SessionManager(std::unique_ptr<core::Cvd> cvd,
                               storage::Repository* repo)
    : cvd_(std::move(cvd)), repo_(repo), name_(cvd_->name()) {
  watermark_.store(cvd_->num_versions(), std::memory_order_release);
  cvd_->set_commit_observer([this](const core::CvdCommitRecord& record) {
    if (repo_ == nullptr) return Status::OK();
    ORPHEUS_ASSIGN_OR_RETURN(uint64_t ticket,
                             repo_->EnqueueCommit(name_, record));
    inflight_tickets_.push_back(ticket);
    return Status::OK();
  });
}

std::unique_ptr<Session> SessionManager::Open() {
  const int id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  ORPHEUS_COUNTER_ADD("session.opened", 1);
  return std::unique_ptr<Session>(new Session(this, id, watermark()));
}

std::unique_ptr<core::Cvd> SessionManager::Release() {
  MutexLock commit_lock(&commit_mu_);
  WriterMutexLock data(&data_mu_);
  cvd_->set_commit_observer(nullptr);
  return std::move(cvd_);
}

Status SessionManager::ReadCvd(
    const std::function<Status(const core::Cvd&)>& fn) const {
  ReaderMutexLock data(&data_mu_);
  return fn(*cvd_);
}

Status SessionManager::RequireUsable() const {
  if (failed_.load(std::memory_order_acquire)) {
    return Status::Internal(StrFormat(
        "session manager for \"%s\" is poisoned after a durability failure; "
        "reopen the repository to recover",
        name_.c_str()));
  }
  return Status::OK();
}

core::VersionId SessionManager::TipOf(core::VersionId base) const {
  const auto& graph = cvd_->graph();
  if (graph.children(base - 1).empty()) return base;
  core::VersionId tip = base;
  for (core::VersionId d : cvd_->Descendants(base)) {
    if (graph.children(d - 1).empty() && d > tip) tip = d;
  }
  return tip;
}

Result<minidb::Table> SessionManager::Materialize(
    const std::vector<core::VersionId>& vids, const std::string& table_name,
    core::VersionId watermark) const {
  ORPHEUS_TRACE_SPAN("session.checkout");
  for (core::VersionId vid : vids) {
    if (vid > watermark) {
      return Status::InvalidArgument(StrFormat(
          "version v%d is beyond this session's snapshot (watermark v%d); "
          "refresh the session to see newer commits",
          vid, watermark));
    }
  }
  ReaderMutexLock data(&data_mu_);
  return cvd_->Materialize(vids, table_name);
}

Result<minidb::Table> SessionManager::Diff(core::VersionId a,
                                           core::VersionId b,
                                           core::VersionId watermark) const {
  if (a > watermark || b > watermark) {
    return Status::InvalidArgument(StrFormat(
        "diff v%d,v%d is beyond this session's snapshot (watermark v%d)",
        a, b, watermark));
  }
  ReaderMutexLock data(&data_mu_);
  return cvd_->Diff(a, b);
}

Result<CommitOutcome> SessionManager::CommitStaged(
    const minidb::Table& table, const std::vector<core::VersionId>& parents,
    const std::string& message, const std::string& author) {
  CommitOutcome out;
  PendingDurability pending;
  ORPHEUS_RETURN_NOT_OK(CommitStaged(table, parents, message, author,
                                     Deadline::Infinite(), &out, &pending));
  return out;
}

Status SessionManager::CommitStaged(
    const minidb::Table& table, const std::vector<core::VersionId>& parents,
    const std::string& message, const std::string& author,
    const Deadline& deadline, CommitOutcome* out,
    PendingDurability* pending) {
  ORPHEUS_TRACE_SPAN("session.commit");
  std::vector<uint64_t> tickets;
  Status apply_status;
  {
    MutexLock commit_lock(&commit_mu_);
    ORPHEUS_RETURN_NOT_OK(RequireUsable());
    inflight_tickets_.clear();
    apply_status = CommitApply(table, parents, message, author, out);
    // Drain the tickets even when a later step failed: every enqueued
    // record WAS applied in memory, so someone must wait out its batch.
    tickets.swap(inflight_tickets_);
  }
  // Wait outside commit_mu_: the next committer enqueues meanwhile and the
  // repository's leader batches both under one fsync.
  Status durable_status = WaitTicketsDurable(tickets, deadline);
  if (durable_status.IsDeadlineExceeded()) {
    // The batch is still in flight: durability (and hence the outcome) is
    // unknown, so the manager is NOT poisoned and the watermark does not
    // move. Park everything needed to resolve the commit later.
    pending->tickets = std::move(tickets);
    pending->outcome = *out;
    pending->apply_status = apply_status;
    ORPHEUS_COUNTER_ADD("session.commit.durability_timeout", 1);
    return durable_status;
  }
  if (!durable_status.ok()) {
    // Versions past the watermark exist in memory but not on disk. The
    // watermark never advances over them, so no session can check them
    // out; poison the manager and make the caller reopen.
    PoisonAfterDurabilityFailure(durable_status);
    return durable_status;
  }
  ORPHEUS_RETURN_NOT_OK(apply_status);
  AdvanceWatermark(std::max(out->vid, out->merged_vid));
  return Status::OK();
}

Status SessionManager::WaitPendingDurable(PendingDurability* pending,
                                          const Deadline& deadline,
                                          CommitOutcome* out) {
  Status durable_status = WaitTicketsDurable(pending->tickets, deadline);
  if (durable_status.IsDeadlineExceeded()) return durable_status;
  if (!durable_status.ok()) {
    PoisonAfterDurabilityFailure(durable_status);
    return durable_status;
  }
  ORPHEUS_RETURN_NOT_OK(pending->apply_status);
  *out = pending->outcome;
  AdvanceWatermark(std::max(out->vid, out->merged_vid));
  return Status::OK();
}

Status SessionManager::WaitTicketsDurable(
    const std::vector<uint64_t>& tickets, const Deadline& deadline) {
  Status first_error;
  for (uint64_t ticket : tickets) {
    if (repo_ == nullptr) break;
    Status s = deadline.is_infinite()
                   ? repo_->WaitCommitDurable(ticket)
                   : repo_->WaitCommitDurableFor(ticket, deadline);
    if (s.IsDeadlineExceeded()) return s;
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

void SessionManager::PoisonAfterDurabilityFailure(const Status& error) {
  failed_.store(true, std::memory_order_release);
  LOG_ERROR("session commit not durable; manager poisoned",
            {{"cvd", name_}, {"error", error.message()}});
}

Status SessionManager::CommitApply(const minidb::Table& table,
                                   const std::vector<core::VersionId>& parents,
                                   const std::string& message,
                                   const std::string& author,
                                   CommitOutcome* out) {
  const core::VersionId base =
      parents.empty() ? core::kInvalidVersion : parents[0];
  core::VersionId tip = base;
  {
    WriterMutexLock data(&data_mu_);
    // Optimistic validation: the tip must be computed before our commit
    // lands (afterwards the new version is itself a childless descendant).
    if (base != core::kInvalidVersion) tip = TipOf(base);
    ORPHEUS_ASSIGN_OR_RETURN(
        out->vid, cvd_->CommitTable(table, parents, message, author));
  }
  ORPHEUS_COUNTER_ADD("session.commit.applied", 1);
  if (tip == base) return Status::OK();

  // A concurrent commit moved the branch past our base: reconcile.
  ORPHEUS_TRACE_SPAN("session.reconcile");
  ORPHEUS_ASSIGN_OR_RETURN(MergePlan plan, PlanMerge(base, tip, out->vid));
  if (!plan.conflicts.empty()) {
    out->conflicts = std::move(plan.conflicts);
    out->reconciled_with = tip;
    ORPHEUS_COUNTER_ADD("session.commit.conflicts", out->conflicts.size());
    LOG_WARN("reconciliation found attribute conflicts",
             {{"cvd", name_},
              {"vid", static_cast<unsigned long long>(out->vid)},
              {"tip", static_cast<unsigned long long>(tip)},
              {"conflicts",
               static_cast<unsigned long long>(out->conflicts.size())}});
    return Status::OK();
  }
  {
    WriterMutexLock data(&data_mu_);
    ORPHEUS_ASSIGN_OR_RETURN(
        out->merged_vid,
        cvd_->CommitTable(
            *plan.table, {tip, out->vid},
            StrFormat("reconcile v%d into v%d", out->vid, tip), author));
  }
  out->reconciled = true;
  out->reconciled_with = tip;
  ORPHEUS_COUNTER_ADD("session.commit.reconciled", 1);
  return Status::OK();
}

Result<SessionManager::MergePlan> SessionManager::PlanMerge(
    core::VersionId base, core::VersionId tip, core::VersionId vid) const {
  // Materialize the three corners of the merge at the current schema
  // (records are immutable, so the shared lock only guards the catalog).
  minidb::Table b_table("merge_base", minidb::Schema());
  minidb::Table t_table("merge_tip", minidb::Schema());
  minidb::Table v_table("merge_ours", minidb::Schema());
  std::vector<int> pk_cols;
  {
    ReaderMutexLock data(&data_mu_);
    ORPHEUS_ASSIGN_OR_RETURN(b_table, cvd_->Materialize({base}, "merge_base"));
    ORPHEUS_ASSIGN_OR_RETURN(t_table, cvd_->Materialize({tip}, "merge_tip"));
    ORPHEUS_ASSIGN_OR_RETURN(v_table, cvd_->Materialize({vid}, "merge_ours"));
    for (const std::string& attr : cvd_->primary_key()) {
      int col = v_table.schema().FindColumn(attr);
      if (col < 0) {
        return Status::Internal(StrFormat(
            "primary-key attribute \"%s\" missing from materialized schema",
            attr.c_str()));
      }
      pk_cols.push_back(col);
    }
  }

  MergePlan plan;
  auto merged = std::make_unique<minidb::Table>(
      StrFormat("reconcile_v%d_v%d", tip, vid), v_table.schema());

  if (pk_cols.empty()) {
    // No primary key: record-level merge. Records are immutable (a modify
    // is delete+add of a fresh rid), so adds and deletes relative to the
    // base can never collide — merge = (base minus both delete sets) plus
    // both add sets, and conflicts are impossible (Ranjan et al. §3).
    std::map<core::RecordId, std::pair<const minidb::Table*, uint32_t>> rows;
    std::map<core::RecordId, int> membership;  // bit 1 = base, 2 = tip, 4 = v
    for (uint32_t r = 0; r < b_table.num_rows(); ++r) {
      membership[b_table.GetValue(r, 0).AsInt()] |= 1;
    }
    for (uint32_t r = 0; r < t_table.num_rows(); ++r) {
      core::RecordId rid = t_table.GetValue(r, 0).AsInt();
      membership[rid] |= 2;
      rows.emplace(rid, std::make_pair(&t_table, r));
    }
    for (uint32_t r = 0; r < v_table.num_rows(); ++r) {
      core::RecordId rid = v_table.GetValue(r, 0).AsInt();
      membership[rid] |= 4;
      rows.emplace(rid, std::make_pair(&v_table, r));
    }
    for (const auto& [rid, mask] : membership) {
      const bool in_base = (mask & 1) != 0;
      const bool keep = in_base ? mask == 7 : (mask & 6) != 0;
      if (!keep) continue;
      const auto& src = rows.at(rid);
      merged->AppendRowUnchecked(src.first->GetRow(src.second));
    }
    plan.table = std::move(merged);
    return plan;
  }

  // Primary-key three-way merge: classify every key's fate on each side.
  struct Slot {
    int64_t b = -1, t = -1, v = -1;  // row ids; -1 = key absent
  };
  std::map<std::string, Slot> keys;
  for (uint32_t r = 0; r < b_table.num_rows(); ++r) {
    keys[RenderKey(b_table, pk_cols, r)].b = r;
  }
  for (uint32_t r = 0; r < t_table.num_rows(); ++r) {
    keys[RenderKey(t_table, pk_cols, r)].t = r;
  }
  for (uint32_t r = 0; r < v_table.num_rows(); ++r) {
    keys[RenderKey(v_table, pk_cols, r)].v = r;
  }

  auto state_of = [&](const Slot& s, const minidb::Table& side,
                      int64_t side_row) {
    if (s.b < 0) return side_row < 0 ? RowState::kAbsent : RowState::kAdded;
    if (side_row < 0) return RowState::kAbsent;  // deleted
    // Same rid => untouched (records are immutable); a new rid under the
    // same key is a modification.
    const int64_t b_rid = b_table.GetValue(s.b, 0).AsInt();
    const int64_t s_rid = side.GetValue(side_row, 0).AsInt();
    return b_rid == s_rid ? RowState::kUnchanged : RowState::kModified;
  };

  for (const auto& [key, slot] : keys) {
    const RowState ts = state_of(slot, t_table, slot.t);
    const RowState vs = state_of(slot, v_table, slot.v);
    if (slot.b < 0) {
      // add/add (or a one-sided add).
      if (ts == RowState::kAdded && vs == RowState::kAdded) {
        if (SameDataPayload(t_table, slot.t, v_table, slot.v)) {
          // Identical insert on both sides: keep the tip's record id.
          merged->AppendRowUnchecked(t_table.GetRow(slot.t));
        } else {
          for (size_t c = 1; c < v_table.num_columns(); ++c) {
            minidb::Value tv = t_table.GetValue(slot.t, c);
            minidb::Value vv = v_table.GetValue(slot.v, c);
            if (tv != vv) {
              plan.conflicts.push_back(MergeConflict{
                  DisplayKey(key), v_table.schema().column(c).name,
                  /*base=*/"", vv.ToString(), tv.ToString()});
            }
          }
        }
      } else if (ts == RowState::kAdded) {
        merged->AppendRowUnchecked(t_table.GetRow(slot.t));
      } else if (vs == RowState::kAdded) {
        merged->AppendRowUnchecked(v_table.GetRow(slot.v));
      }
      continue;
    }
    // Key existed at the base.
    if (ts == RowState::kAbsent && vs == RowState::kAbsent) continue;
    if (ts == RowState::kUnchanged && vs == RowState::kUnchanged) {
      merged->AppendRowUnchecked(t_table.GetRow(slot.t));
    } else if (ts == RowState::kAbsent) {
      // delete/modify: the modification wins (Ranjan et al.'s rule — a
      // concurrent edit proves the record still matters).
      if (vs == RowState::kModified) {
        merged->AppendRowUnchecked(v_table.GetRow(slot.v));
      }
      // vs == kUnchanged: clean delete.
    } else if (vs == RowState::kAbsent) {
      if (ts == RowState::kModified) {
        merged->AppendRowUnchecked(t_table.GetRow(slot.t));
      }
    } else if (ts == RowState::kUnchanged) {
      merged->AppendRowUnchecked(v_table.GetRow(slot.v));
    } else if (vs == RowState::kUnchanged) {
      merged->AppendRowUnchecked(t_table.GetRow(slot.t));
    } else if (SameDataPayload(t_table, slot.t, v_table, slot.v)) {
      // modify/modify to the same payload: keep the tip's record id.
      merged->AppendRowUnchecked(t_table.GetRow(slot.t));
    } else {
      // modify/modify: attribute-wise three-way against the base. The
      // merged row combines cells from both sides, so it is a new record:
      // _rid is left NULL and CommitTable assigns a fresh id.
      minidb::Row row;
      row.reserve(v_table.num_columns());
      row.push_back(minidb::Value::Null());
      size_t conflicts_before = plan.conflicts.size();
      for (size_t c = 1; c < v_table.num_columns(); ++c) {
        minidb::Value bv = b_table.GetValue(slot.b, c);
        minidb::Value tv = t_table.GetValue(slot.t, c);
        minidb::Value vv = v_table.GetValue(slot.v, c);
        if (tv != bv && vv != bv && tv != vv) {
          plan.conflicts.push_back(MergeConflict{
              DisplayKey(key), v_table.schema().column(c).name,
              bv.ToString(), vv.ToString(), tv.ToString()});
          row.push_back(std::move(bv));  // placeholder; plan is discarded
        } else if (vv != bv) {
          row.push_back(std::move(vv));
        } else {
          row.push_back(std::move(tv));  // tv != bv, or tv == bv == vv
        }
      }
      if (plan.conflicts.size() == conflicts_before) {
        merged->AppendRowUnchecked(row);
      }
    }
  }

  if (!plan.conflicts.empty()) return plan;  // table stays null
  plan.table = std::move(merged);
  return plan;
}

void SessionManager::AdvanceWatermark(core::VersionId vid) {
  core::VersionId cur = watermark_.load(std::memory_order_relaxed);
  while (cur < vid && !watermark_.compare_exchange_weak(
                          cur, vid, std::memory_order_release,
                          std::memory_order_relaxed)) {
  }
}

}  // namespace orpheus::session
