#ifndef ORPHEUS_SESSION_SESSION_H_
#define ORPHEUS_SESSION_SESSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/timer.h"
#include "core/cvd.h"
#include "core/types.h"
#include "minidb/database.h"
#include "storage/repository.h"

namespace orpheus::session {

/// Concurrent multi-session access to one CVD (DESIGN.md §13).
///
/// A SessionManager owns the shared Cvd (and optionally routes commits into
/// a durable Repository); each Session is a private workspace — its own
/// staging database and a pinned snapshot watermark — handed to one thread
/// at a time. Many sessions operate concurrently:
///
///   - Checkouts/diffs are snapshot-isolated reads: a session only sees
///     versions at or below the durable high-water mark it pinned at
///     open/refresh time, so mid-churn checkouts are byte-stable. They run
///     under a shared (reader) lock and never wait on WAL fsyncs.
///   - Commits are optimistic. The committer validates under the commit
///     lock that its base version is still a graph tip; if a concurrent
///     commit got there first, reconciliation (three-way record-level
///     merge, Ranjan et al.) produces a merge commit with both divergent
///     versions as parents. Only when the same attribute of the same
///     record diverges does the commit surface a conflict set instead.
///   - Durability is group-committed: the commit lock is released before
///     waiting on the WAL, so concurrent committers' records are batched
///     under a single fsync by the repository's leader.

/// One attribute-level divergence the automatic merge cannot resolve.
struct MergeConflict {
  std::string key;        // rendered primary-key tuple
  std::string attribute;  // data attribute whose values diverge
  std::string base;       // value at the common base ("" if record absent)
  std::string ours;       // the committing session's value
  std::string theirs;     // the concurrent tip's value
};

/// What one Session::Commit produced.
struct CommitOutcome {
  /// The version holding the session's table (always created).
  core::VersionId vid = core::kInvalidVersion;
  /// The reconciliation merge commit (kInvalidVersion when the base was
  /// still a tip, or when conflicts blocked the merge).
  core::VersionId merged_vid = core::kInvalidVersion;
  /// The version the merge reconciled against (the concurrent tip).
  core::VersionId reconciled_with = core::kInvalidVersion;
  bool reconciled = false;
  /// Non-empty: the merge was refused; `vid` is left as a divergent branch
  /// for manual resolution.
  std::vector<MergeConflict> conflicts;
};

class SessionManager;

/// A commit applied in memory whose group-commit batch outlived the
/// caller's deadline: the WAL tickets are still in flight and the outcome
/// (computed during apply) is parked until a re-wait resolves durability.
struct PendingDurability {
  std::vector<uint64_t> tickets;
  CommitOutcome outcome;
  Status apply_status;
};

/// A private workspace over the shared CVD. NOT thread-safe — one thread
/// drives a Session at a time; concurrency comes from many Sessions.
class Session {
 public:
  /// Materialize versions (all <= the pinned watermark) into this session's
  /// staging database as `table_name`, recording provenance for Commit.
  Status Checkout(const std::vector<core::VersionId>& vids,
                  const std::string& table_name);

  /// The session's staging area (mutate checked-out tables here).
  minidb::Database* staging() { return &staging_; }
  minidb::Table* table(const std::string& name) {
    return staging_.GetTable(name);
  }

  /// Commit a staged table against the parents recorded at Checkout. On
  /// success (including a conflict outcome — the table's own version is
  /// always created) the staging table is dropped and the watermark
  /// advances to cover the new commit(s).
  Result<CommitOutcome> Commit(const std::string& table_name,
                               const std::string& message,
                               const std::string& author = "");

  /// Commit with a bounded durability wait (the network server's commit
  /// path: a client deadline must not hang on a stalled group-commit
  /// leader). On DeadlineExceeded the commit was APPLIED in memory but its
  /// WAL batch is still in flight — the outcome is unknown, the staging
  /// table is kept, and the session remembers the in-flight tickets: a
  /// later call for the same table re-waits those tickets instead of
  /// re-applying, so retrying after a timeout can never double-commit.
  /// Any other error is definitive (validation failure, conflict-free
  /// apply error, or a durability failure that poisons the manager).
  Status CommitWithDeadline(const std::string& table_name,
                            const std::string& message,
                            const std::string& author,
                            const Deadline& deadline, CommitOutcome* out);

  /// Swap the contents of a staged table (keeping the provenance recorded
  /// by Checkout) with a table shipped from elsewhere — the server's way
  /// of adopting a remote client's edits before committing them. Refused
  /// while a timed-out commit for `table_name` is still in flight.
  Status ReplaceStaging(const std::string& table_name, minidb::Table table);

  /// True while a deadline-exceeded commit for `table_name` awaits its
  /// durability verdict (CommitWithDeadline must be called to resolve it).
  bool HasPendingCommit(const std::string& table_name) const {
    return pending_commits_.find(table_name) != pending_commits_.end();
  }

  /// Drop a staged table and its provenance without committing (the server
  /// uses this to make a retried checkout idempotent). Refused while a
  /// timed-out commit for `table_name` is still in flight.
  Status DiscardStaging(const std::string& table_name);

  /// The parent versions recorded for `table_name` at Checkout, or null.
  const std::vector<core::VersionId>* CheckoutParents(
      const std::string& table_name) const {
    auto it = parents_.find(table_name);
    return it == parents_.end() ? nullptr : &it->second;
  }

  /// Records in `a` but not `b` (both <= the pinned watermark).
  Result<minidb::Table> Diff(core::VersionId a, core::VersionId b) const;

  /// Re-pin the watermark to the current durable high-water mark, making
  /// commits that landed since open/last refresh visible.
  Status Refresh();

  core::VersionId watermark() const { return watermark_; }
  int id() const { return id_; }

 private:
  friend class SessionManager;
  Session(SessionManager* manager, int id, core::VersionId watermark)
      : manager_(manager), id_(id), watermark_(watermark) {}

  SessionManager* manager_;
  int id_;
  core::VersionId watermark_;
  minidb::Database staging_;
  // Staging table -> parent versions pinned at checkout.
  std::unordered_map<std::string, std::vector<core::VersionId>> parents_;
  // Staging table -> commit applied in memory but with its WAL batch still
  // in flight after a durability-wait timeout (see CommitWithDeadline).
  std::unordered_map<std::string, PendingDurability> pending_commits_;
};

/// Owns the shared Cvd and coordinates its concurrent sessions.
class SessionManager {
 public:
  /// Takes ownership of `cvd` and installs its commit observer (replacing
  /// any existing one). `repo` may be null: commits are then acknowledged
  /// without durability. The repository must outlive the manager.
  SessionManager(std::unique_ptr<core::Cvd> cvd, storage::Repository* repo);

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Open a new session pinned at the current durable watermark. The
  /// manager must outlive every session it opened.
  std::unique_ptr<Session> Open();

  /// Hand the CVD back (clearing the commit observer). No session may be
  /// used afterwards.
  std::unique_ptr<core::Cvd> Release();

  const std::string& cvd_name() const { return name_; }

  /// Durable high-water mark: versions <= this are applied AND logged.
  core::VersionId watermark() const {
    return watermark_.load(std::memory_order_acquire);
  }

  /// True after a durability failure: commits are refused until the
  /// repository is reopened (in-memory versions past the watermark may not
  /// be on disk).
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// Run a read-only callback against the CVD under the shared data lock
  /// (for callers outside the Session API, e.g. the CLI's ls/log).
  Status ReadCvd(const std::function<Status(const core::Cvd&)>& fn) const;

  int sessions_opened() const {
    return next_session_id_.load(std::memory_order_relaxed) - 1;
  }

 private:
  friend class Session;

  Status RequireUsable() const;
  /// Largest childless descendant of `base` (== base when base is a tip).
  /// Deterministic: highest version id wins. Caller holds data_mu_.
  core::VersionId TipOf(core::VersionId base) const;

  Result<minidb::Table> Materialize(const std::vector<core::VersionId>& vids,
                                    const std::string& table_name,
                                    core::VersionId watermark) const;
  Result<minidb::Table> Diff(core::VersionId a, core::VersionId b,
                             core::VersionId watermark) const;

  /// The optimistic-commit protocol (see session.cc for the lock dance).
  Result<CommitOutcome> CommitStaged(const minidb::Table& table,
                                     const std::vector<core::VersionId>& parents,
                                     const std::string& message,
                                     const std::string& author);

  /// Deadline-bounded CommitStaged. On DeadlineExceeded `*pending` holds
  /// the in-flight tickets plus the parked outcome (the apply already
  /// happened); the manager is NOT poisoned — durability is unknown, not
  /// failed. Resolve by calling WaitPendingDurable.
  Status CommitStaged(const minidb::Table& table,
                      const std::vector<core::VersionId>& parents,
                      const std::string& message, const std::string& author,
                      const Deadline& deadline, CommitOutcome* out,
                      PendingDurability* pending);

  /// Re-wait a parked commit's tickets. OK: fills `*out` and advances the
  /// watermark. DeadlineExceeded: still in flight, call again. Other
  /// errors are definitive (durability failed -> manager poisoned, or the
  /// parked apply error).
  Status WaitPendingDurable(PendingDurability* pending,
                            const Deadline& deadline, CommitOutcome* out);

  /// Phase run under commit_mu_: apply the commit, detect divergence,
  /// build + apply the reconciliation merge. Fills `out`.
  Status CommitApply(const minidb::Table& table,
                     const std::vector<core::VersionId>& parents,
                     const std::string& message, const std::string& author,
                     CommitOutcome* out) ORPHEUS_REQUIRES(commit_mu_);

  /// Deterministic three-way record-level merge of tip `t` and fresh
  /// commit `v` against their common base `b` (session.cc §"merge").
  struct MergePlan {
    std::unique_ptr<minidb::Table> table;  // null when conflicts is non-empty
    std::vector<MergeConflict> conflicts;
  };
  Result<MergePlan> PlanMerge(core::VersionId base, core::VersionId tip,
                              core::VersionId vid) const;

  void AdvanceWatermark(core::VersionId vid);

  /// Wait out every ticket, bounded by `deadline`. DeadlineExceeded
  /// short-circuits (durability unknown); append failures are collected
  /// (first wins) so every ticket still gets waited on.
  Status WaitTicketsDurable(const std::vector<uint64_t>& tickets,
                            const Deadline& deadline);
  /// Mark the manager failed after a definitive durability failure.
  void PoisonAfterDurabilityFailure(const Status& error);

  // Lock order (ranks): commit_mu_ (2) -> data_mu_ (5) -> repository (10).
  // Committers serialize on commit_mu_ while holding data_mu_ only for the
  // in-memory apply; readers take data_mu_ shared and never touch
  // commit_mu_, so checkouts stay concurrent with a committer's planning
  // and its fsync wait.
  mutable Mutex commit_mu_{"session.commit", lock_rank::kSessionCommit};
  mutable SharedMutex data_mu_{"session.data", lock_rank::kSessionData};

  // Owned CVD; writes under data_mu_ exclusive, reads under shared. Not
  // annotated: the commit observer lambda inside the Cvd also reaches it.
  std::unique_ptr<core::Cvd> cvd_;
  storage::Repository* repo_;  // nullable, not owned
  std::string name_;

  // Tickets returned by Repository::EnqueueCommit during the current
  // CommitApply. Written by the commit observer, drained by CommitStaged;
  // both run with commit_mu_ held (the observer fires inside CommitTable,
  // which sessions only call from CommitApply).
  std::vector<uint64_t> inflight_tickets_;

  std::atomic<core::VersionId> watermark_{0};
  std::atomic<bool> failed_{false};
  std::atomic<int> next_session_id_{1};
};

}  // namespace orpheus::session

#endif  // ORPHEUS_SESSION_SESSION_H_
