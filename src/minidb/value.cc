#include "minidb/value.h"

#include "common/ridset.h"
#include "common/string_util.h"

namespace orpheus::minidb {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "null";
    case ValueType::kInt64: return "int64";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
    case ValueType::kIntArray: return "int[]";
  }
  return "?";
}

const std::vector<int64_t>& Value::AsIntArray() const {
  if (const auto* set = std::get_if<std::shared_ptr<const RidSet>>(&var_)) {
    return (*set)->Materialized();
  }
  return std::get<std::vector<int64_t>>(var_);
}

std::vector<int64_t>& Value::MutableIntArray() {
  if (const auto* set = std::get_if<std::shared_ptr<const RidSet>>(&var_)) {
    var_ = (*set)->ToVector();
  }
  return std::get<std::vector<int64_t>>(var_);
}

bool Value::operator==(const Value& other) const {
  if (type() != other.type()) return false;
  if (type() != ValueType::kIntArray) return var_ == other.var_;
  const auto* a = TryRidSet();
  const auto* b = other.TryRidSet();
  // Compressed sets are canonical, so same-representation equality is a
  // cheap structural compare; mixed representations compare element-wise.
  if (a && b) return (*a == *b) || (**a == **b);
  return AsIntArray() == other.AsIntArray();
}

bool Value::operator<(const Value& other) const {
  ValueType a = type();
  ValueType b = other.type();
  // Nulls first.
  if (a == ValueType::kNull || b == ValueType::kNull) {
    return a == ValueType::kNull && b != ValueType::kNull;
  }
  bool a_num = a == ValueType::kInt64 || a == ValueType::kDouble;
  bool b_num = b == ValueType::kInt64 || b == ValueType::kDouble;
  if (a_num && b_num) return NumericValue() < other.NumericValue();
  if (a != b) return static_cast<int>(a) < static_cast<int>(b);
  if (a == ValueType::kString) return AsString() < other.AsString();
  if (a == ValueType::kIntArray) return AsIntArray() < other.AsIntArray();
  return false;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt());
    case ValueType::kDouble:
      return StrFormat("%g", AsDouble());
    case ValueType::kString:
      return AsString();
    case ValueType::kIntArray: {
      std::string out = "{";
      const auto& arr = AsIntArray();
      for (size_t i = 0; i < arr.size(); ++i) {
        if (i) out += ",";
        out += std::to_string(arr[i]);
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

}  // namespace orpheus::minidb
