#include "minidb/table.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "common/metrics.h"
#include "common/ridset.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace orpheus::minidb {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (const auto& def : schema_.columns()) {
    columns_.emplace_back(def.type);
  }
}

Status Table::InsertRow(const Row& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("row arity %zu != schema arity %zu in table %s", row.size(),
                  schema_.num_columns(), name_.c_str()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    ValueType want = schema_.column(i).type;
    ValueType got = row[i].type();
    bool numeric_ok = (want == ValueType::kInt64 || want == ValueType::kDouble) &&
                      (got == ValueType::kInt64 || got == ValueType::kDouble);
    if (got != want && !numeric_ok) {
      return Status::InvalidArgument(
          StrFormat("column %s expects %s, got %s",
                    schema_.column(i).name.c_str(), ValueTypeName(want),
                    ValueTypeName(got)));
    }
  }
  AppendRowUnchecked(row);
  return Status::OK();
}

void Table::AppendRowUnchecked(const Row& row) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].AppendValue(row[i]);
  }
  ++num_rows_;
  MaintainIndexesOnAppend(static_cast<uint32_t>(num_rows_ - 1));
  ORPHEUS_COUNTER_ADD("minidb.rows_appended", 1);
}

void Table::AppendIntRowUnchecked(const std::vector<int64_t>& vals) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].AppendInt(vals[i]);
  }
  ++num_rows_;
  MaintainIndexesOnAppend(static_cast<uint32_t>(num_rows_ - 1));
  ORPHEUS_COUNTER_ADD("minidb.rows_appended", 1);
}

void Table::AppendIntRows(const int64_t* rows, size_t nrows) {
  const size_t ncols = columns_.size();
  ParallelFor(0, ncols, 1, [this, rows, nrows, ncols](size_t lo, size_t hi) {
    for (size_t c = lo; c < hi; ++c) {
      for (size_t r = 0; r < nrows; ++r) {
        columns_[c].AppendInt(rows[r * ncols + c]);
      }
    }
  });
  const size_t first_new = num_rows_;
  num_rows_ += nrows;
  if (!indexes_.empty()) {
    for (size_t r = first_new; r < num_rows_; ++r) {
      MaintainIndexesOnAppend(static_cast<uint32_t>(r));
    }
  }
  ORPHEUS_COUNTER_ADD("minidb.rows_appended", nrows);
}

Row Table::GetRow(uint32_t row) const {
  Row out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col.GetValue(row));
  return out;
}

Status Table::BuildUniqueIntIndex(int col) {
  if (col < 0 || static_cast<size_t>(col) >= columns_.size()) {
    return Status::InvalidArgument("index column out of range");
  }
  if (columns_[col].type() != ValueType::kInt64) {
    return Status::InvalidArgument("unique index requires an int64 column");
  }
  std::unordered_map<int64_t, uint32_t> idx;
  idx.reserve(num_rows_ * 2);
  const auto& data = columns_[col].int_data();
  for (uint32_t r = 0; r < num_rows_; ++r) {
    auto [it, inserted] = idx.emplace(data[r], r);
    if (!inserted) {
      return Status::ConstraintViolation(
          StrFormat("duplicate key %lld in unique index on column %d",
                    static_cast<long long>(data[r]), col));
    }
  }
  indexes_[col] = std::move(idx);
  ORPHEUS_COUNTER_ADD("minidb.index_builds", 1);
  return Status::OK();
}

std::optional<uint32_t> Table::LookupUniqueInt(int col, int64_t key) const {
  ORPHEUS_COUNTER_ADD("minidb.index_lookups", 1);
  auto it = indexes_.find(col);
  if (it == indexes_.end()) return std::nullopt;
  auto hit = it->second.find(key);
  if (hit == it->second.end()) return std::nullopt;
  return hit->second;
}

std::vector<uint32_t> Table::SelectRows(
    const std::function<bool(const Table&, uint32_t)>& pred) const {
  std::vector<uint32_t> out;
  for (uint32_t r = 0; r < num_rows_; ++r) {
    if (pred(*this, r)) out.push_back(r);
  }
  return out;
}

std::vector<uint32_t> Table::SelectRowsArrayContains(int array_col,
                                                     int64_t needle) const {
  const Column& col = columns_[array_col];
  // Still a full-table scan (the combined-table checkout plan), but the
  // per-row membership tests fan out across the pool; chunk outputs are
  // stitched in row order so the result matches the serial scan exactly.
  // Compressed cells are probed in place; plain cells binary-search.
  return ParallelCollect<uint32_t>(
      num_rows_, 1 << 13,
      [&col, needle](size_t lo, size_t hi, std::vector<uint32_t>* out) {
        size_t hint = 0;
        for (size_t r = lo; r < hi; ++r) {
          const auto& set = col.GetRidSet(r);
          bool hit;
          if (set) {
            hit = set->ContainsHint(needle, &hint);
          } else {
            const auto& arr = col.GetIntArray(r);
            hit = std::binary_search(arr.begin(), arr.end(), needle);
          }
          if (hit) out->push_back(static_cast<uint32_t>(r));
        }
      });
}

Table Table::CopyRows(const std::vector<uint32_t>& rows,
                      std::string new_name) const {
  Table out(std::move(new_name), schema_);
  out.AppendFrom(*this, rows);
  out.pk_cols_ = pk_cols_;
  return out;
}

Table Table::ProjectRows(const std::vector<uint32_t>& rows,
                         const std::vector<int>& cols,
                         std::string new_name) const {
  std::vector<ColumnDef> defs;
  defs.reserve(cols.size());
  for (int c : cols) defs.push_back(schema_.column(c));
  Table out(std::move(new_name), Schema(std::move(defs)));
  out.AppendFrom(*this, rows, &cols);
  return out;
}

void Table::AppendFrom(const Table& src, const std::vector<uint32_t>& rows,
                       const std::vector<int>* src_cols) {
  // Column fills are independent, so materialization (the copy half of a
  // checkout) parallelizes across columns. Row order within each column is
  // preserved, so the result is layout-identical to the serial fill.
  const size_t ncols = columns_.size();
  auto fill_column = [this, &src, &rows, src_cols](size_t c) {
    const Column& in = src.columns_[src_cols ? (*src_cols)[c] : c];
    Column& out = columns_[c];
    switch (in.type()) {
      case ValueType::kInt64:
        for (uint32_t r : rows) {
          if (in.IsNull(r)) {
            out.AppendNull();
          } else {
            out.AppendInt(in.GetInt(r));
          }
        }
        break;
      default:
        for (uint32_t r : rows) out.AppendValue(in.GetValue(r));
        break;
    }
  };
  if (rows.size() >= 4096 && ncols > 1) {
    ParallelFor(0, ncols, 1, [&fill_column](size_t lo, size_t hi) {
      for (size_t c = lo; c < hi; ++c) fill_column(c);
    });
  } else {
    for (size_t c = 0; c < ncols; ++c) fill_column(c);
  }
  size_t first_new = num_rows_;
  num_rows_ += rows.size();
  if (!indexes_.empty()) {
    for (size_t r = first_new; r < num_rows_; ++r) {
      MaintainIndexesOnAppend(static_cast<uint32_t>(r));
    }
  }
  ORPHEUS_COUNTER_ADD("minidb.rows_copied", rows.size());
}

Table Table::Clone(std::string new_name) const {
  std::vector<uint32_t> all(num_rows_);
  std::iota(all.begin(), all.end(), 0u);
  Table out = CopyRows(all, std::move(new_name));
  for (const auto& [col, idx] : indexes_) {
    // Clone of a valid unique index cannot find duplicates.
    ORPHEUS_CHECK_OK(out.BuildUniqueIntIndex(col));
  }
  return out;
}

void Table::SortByIntColumn(int col) {
  ORPHEUS_COUNTER_ADD("minidb.sorts", 1);
  std::vector<uint32_t> order(num_rows_);
  std::iota(order.begin(), order.end(), 0u);
  const auto& keys = columns_[col].int_data();
  std::sort(order.begin(), order.end(),
            [&keys](uint32_t a, uint32_t b) { return keys[a] < keys[b]; });
  Table sorted = CopyRows(order, name_);
  columns_ = std::move(sorted.columns_);
  for (auto& [icol, idx] : indexes_) {
    (void)idx;
    // Re-clustering permutes rows but keeps keys unique.
    ORPHEUS_CHECK_OK(BuildUniqueIntIndex(icol));
  }
}

Status Table::AddColumn(ColumnDef def) {
  if (schema_.FindColumn(def.name) >= 0) {
    return Status::AlreadyExists(
        StrFormat("column %s already exists", def.name.c_str()));
  }
  Column col(def.type);
  for (size_t r = 0; r < num_rows_; ++r) col.AppendNull();
  schema_.AddColumn(std::move(def));
  columns_.push_back(std::move(col));
  return Status::OK();
}

void Table::DeleteRows(const std::vector<uint32_t>& rows) {
  if (rows.empty()) return;
  ORPHEUS_COUNTER_ADD("minidb.rows_deleted", rows.size());
  // Swap-remove each doomed row, highest index first, so the cost is
  // proportional to the number of deleted rows (like marking tuples dead),
  // not to the table size. Physical row order is not preserved.
  for (auto it = rows.rbegin(); it != rows.rend(); ++it) {
    uint32_t r = *it;
    uint32_t last = static_cast<uint32_t>(num_rows_ - 1);
    for (auto& [col, idx] : indexes_) {
      idx.erase(columns_[col].GetInt(r));
      if (r != last) {
        // The row moving down keeps its key but changes position.
        auto moved = idx.find(columns_[col].GetInt(last));
        if (moved != idx.end()) moved->second = r;
      }
    }
    for (auto& col : columns_) col.SwapRemove(r);
    --num_rows_;
  }
}

Status Table::WidenColumn(int col, ValueType to) {
  if (col < 0 || static_cast<size_t>(col) >= columns_.size()) {
    return Status::InvalidArgument("column out of range");
  }
  if (indexes_.count(col)) {
    return Status::NotSupported("cannot widen an indexed column");
  }
  ORPHEUS_RETURN_NOT_OK(columns_[col].Widen(to));
  schema_.SetColumnType(static_cast<size_t>(col), to);
  return Status::OK();
}

void Table::SetRow(uint32_t row, const Row& vals) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    // Maintain any unique index whose key cell changes.
    auto it = indexes_.find(static_cast<int>(c));
    if (it != indexes_.end() && !vals[c].is_null() &&
        columns_[c].GetInt(row) != vals[c].AsInt()) {
      it->second.erase(columns_[c].GetInt(row));
      it->second.emplace(vals[c].AsInt(), row);
    }
    columns_[c].SetValue(row, vals[c]);
  }
}

void Table::RewriteRowAppendToArray(uint32_t row, int array_col,
                                    int64_t value) {
  // Read the full tuple out (PostgreSQL forms the new tuple from the old).
  Row tuple = GetRow(row);
  if (const auto* set = tuple[array_col].TryRidSet()) {
    // Compressed cell: extend the set in place of the decompress-append
    // cycle (touches one container instead of the whole list).
    tuple[array_col] = Value(std::make_shared<const orpheus::RidSet>(
        (*set)->WithAppended(value)));
  } else {
    auto& arr = tuple[array_col].MutableIntArray();
    arr.push_back(value);  // arrays are append-ordered, hence stay sorted
  }
  // Index maintenance: an UPDATE re-enters the tuple in every index.
  for (auto& [col, idx] : indexes_) {
    auto it = idx.find(columns_[col].GetInt(row));
    if (it != idx.end()) {
      int64_t key = it->first;
      idx.erase(it);
      idx.emplace(key, row);
    }
  }
  // Write the full tuple back.
  SetRow(row, tuple);
}

void Table::ValidateIndexes(ValidationReport* report) const {
  for (const auto& [col, idx] : indexes_) {
    const std::string ctx = StrFormat("table %s col %d", name_.c_str(), col);
    if (idx.size() != num_rows_) {
      report->Add("minidb.index", ctx,
                  StrFormat("index holds %zu entries for %zu rows",
                            idx.size(), num_rows_));
    }
    for (uint32_t r = 0; r < num_rows_; ++r) {
      if (columns_[col].IsNull(r)) {
        report->Add("minidb.index", ctx,
                    StrFormat("row %u has NULL in a uniquely indexed column",
                              r));
        continue;
      }
      auto it = idx.find(columns_[col].GetInt(r));
      if (it == idx.end()) {
        report->Add("minidb.index", ctx,
                    StrFormat("row %u key %lld missing from the index", r,
                              static_cast<long long>(columns_[col].GetInt(r))));
      } else if (it->second != r) {
        report->Add("minidb.index", ctx,
                    StrFormat("key %lld resolves to row %u, expected row %u "
                              "(index/payload disagreement)",
                              static_cast<long long>(it->first), it->second,
                              r));
      }
    }
  }
}

uint64_t Table::DataBytes() const {
  uint64_t bytes = 0;
  for (const auto& col : columns_) bytes += col.StorageBytes();
  return bytes;
}

uint64_t Table::IndexBytes() const {
  uint64_t bytes = 0;
  for (const auto& [col, idx] : indexes_) {
    (void)col;
    bytes += idx.size() * 16;
  }
  return bytes;
}

void Table::MaintainIndexesOnAppend(uint32_t new_row) {
  if (indexes_.empty()) return;
  for (auto& [col, idx] : indexes_) {
    idx.emplace(columns_[col].GetInt(new_row), new_row);
  }
}

}  // namespace orpheus::minidb
