#ifndef ORPHEUS_MINIDB_CSV_H_
#define ORPHEUS_MINIDB_CSV_H_

#include <string>

#include "common/result.h"
#include "minidb/table.h"

namespace orpheus::minidb {

/// CSV import/export for the `checkout -f` / `commit -f` workflow
/// (Sec. 3.3.1): users take versions out as CSV files, edit them in Python
/// or R, and commit them back with a schema file.

/// Write `table` to `path` with a header row. Cells containing commas,
/// quotes or newlines are quoted.
Status WriteCsv(const Table& table, const std::string& path);

/// Parse a schema description: one `name:type` pair per line (or
/// comma-separated), where type is int64|double|string. This is the `-s`
/// schema file of the commit command.
Result<Schema> ParseSchemaSpec(const std::string& spec);

/// Read a CSV file with a header row into a table. With `schema` null the
/// column types are inferred from the data (int64 -> double -> string).
Result<Table> ReadCsv(const std::string& path, const std::string& table_name,
                      const Schema* schema = nullptr);

/// Parse CSV text directly (used by tests and the CLI's in-memory mode).
Result<Table> ParseCsv(const std::string& text, const std::string& table_name,
                       const Schema* schema = nullptr);

/// Render a table as CSV text.
std::string ToCsv(const Table& table);

}  // namespace orpheus::minidb

#endif  // ORPHEUS_MINIDB_CSV_H_
