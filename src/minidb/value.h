#ifndef ORPHEUS_MINIDB_VALUE_H_
#define ORPHEUS_MINIDB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace orpheus::minidb {

/// Column data types supported by the engine. kIntArray backs the
/// `vlist`/`rlist` versioning attributes of Chapter 4 (PostgreSQL's int[]).
enum class ValueType : uint8_t {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
  kIntArray,
};

const char* ValueTypeName(ValueType t);

/// A dynamically-typed cell value. Tables store data in typed column vectors
/// (see column.h); Value is the boundary type used for row-at-a-time APIs,
/// predicates, and query results.
class Value {
 public:
  Value() : var_(std::monostate{}) {}
  explicit Value(int64_t v) : var_(v) {}
  explicit Value(double v) : var_(v) {}
  explicit Value(std::string v) : var_(std::move(v)) {}
  explicit Value(const char* v) : var_(std::string(v)) {}
  explicit Value(std::vector<int64_t> v) : var_(std::move(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (var_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInt64;
      case 2: return ValueType::kDouble;
      case 3: return ValueType::kString;
      case 4: return ValueType::kIntArray;
    }
    return ValueType::kNull;
  }

  bool is_null() const { return var_.index() == 0; }
  int64_t AsInt() const { return std::get<int64_t>(var_); }
  double AsDouble() const { return std::get<double>(var_); }
  const std::string& AsString() const { return std::get<std::string>(var_); }
  const std::vector<int64_t>& AsIntArray() const {
    return std::get<std::vector<int64_t>>(var_);
  }
  std::vector<int64_t>& MutableIntArray() {
    return std::get<std::vector<int64_t>>(var_);
  }

  /// Numeric view: int64 and double both compare as double.
  double NumericValue() const {
    if (var_.index() == 1) return static_cast<double>(AsInt());
    return AsDouble();
  }

  bool operator==(const Value& other) const { return var_ == other.var_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total ordering within a type; null sorts first, cross-numeric compares
  /// numerically.
  bool operator<(const Value& other) const;

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string,
               std::vector<int64_t>>
      var_;
};

/// A materialized row: one Value per column.
using Row = std::vector<Value>;

}  // namespace orpheus::minidb

#endif  // ORPHEUS_MINIDB_VALUE_H_
