#ifndef ORPHEUS_MINIDB_VALUE_H_
#define ORPHEUS_MINIDB_VALUE_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace orpheus {
class RidSet;
}  // namespace orpheus

namespace orpheus::minidb {

/// Column data types supported by the engine. kIntArray backs the
/// `vlist`/`rlist` versioning attributes of Chapter 4 (PostgreSQL's int[]).
enum class ValueType : uint8_t {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
  kIntArray,
};

const char* ValueTypeName(ValueType t);

/// A dynamically-typed cell value. Tables store data in typed column vectors
/// (see column.h); Value is the boundary type used for row-at-a-time APIs,
/// predicates, and query results.
///
/// kIntArray cells have two physical representations: a plain
/// std::vector<int64_t>, or a shared compressed RidSet (the canonical form
/// for sorted rlist/vlist sets — see common/ridset.h). Both report
/// ValueType::kIntArray and compare equal by content; AsIntArray() lazily
/// materializes the compressed form for legacy callers.
class Value {
 public:
  Value() : var_(std::monostate{}) {}
  explicit Value(int64_t v) : var_(v) {}
  explicit Value(double v) : var_(v) {}
  explicit Value(std::string v) : var_(std::move(v)) {}
  explicit Value(const char* v) : var_(std::string(v)) {}
  explicit Value(std::vector<int64_t> v) : var_(std::move(v)) {}
  explicit Value(std::shared_ptr<const RidSet> v) : var_(std::move(v)) {
    assert(std::get<std::shared_ptr<const RidSet>>(var_) != nullptr);
  }

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (var_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInt64;
      case 2: return ValueType::kDouble;
      case 3: return ValueType::kString;
      case 4: return ValueType::kIntArray;
      case 5: return ValueType::kIntArray;  // compressed representation
    }
    return ValueType::kNull;
  }

  bool is_null() const { return var_.index() == 0; }
  int64_t AsInt() const { return std::get<int64_t>(var_); }
  double AsDouble() const { return std::get<double>(var_); }
  const std::string& AsString() const { return std::get<std::string>(var_); }

  /// Plain int-array view; materializes (and caches) the compressed
  /// representation when needed.
  const std::vector<int64_t>& AsIntArray() const;

  /// Mutable int-array view; demotes a compressed cell to a plain vector in
  /// place first.
  std::vector<int64_t>& MutableIntArray();

  /// The compressed payload, or nullptr when this is not a compressed
  /// int-array cell.
  const std::shared_ptr<const RidSet>* TryRidSet() const {
    return std::get_if<std::shared_ptr<const RidSet>>(&var_);
  }

  /// Numeric view: int64 and double both compare as double.
  double NumericValue() const {
    if (var_.index() == 1) return static_cast<double>(AsInt());
    return AsDouble();
  }

  /// Content equality: kIntArray compares element-wise across both physical
  /// representations.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total ordering within a type; null sorts first, cross-numeric compares
  /// numerically.
  bool operator<(const Value& other) const;

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string,
               std::vector<int64_t>, std::shared_ptr<const RidSet>>
      var_;
};

/// A materialized row: one Value per column.
using Row = std::vector<Value>;

}  // namespace orpheus::minidb

#endif  // ORPHEUS_MINIDB_VALUE_H_
