#ifndef ORPHEUS_MINIDB_JOIN_H_
#define ORPHEUS_MINIDB_JOIN_H_

#include <cstdint>
#include <vector>

#include "minidb/table.h"

namespace orpheus::minidb {

/// Physical join strategies for the checkout join (Sec. 5.5.5): joining the
/// data table's rid column with the rlist fetched from the versioning table.
enum class JoinAlgorithm {
  kHashJoin,         // build hash table on rlist, sequential-scan data table
  kMergeJoin,        // sort both sides (a no-op side if pre-clustered), merge
  kIndexNestedLoop,  // per-rid point lookup on the data table's rid index
};

const char* JoinAlgorithmName(JoinAlgorithm algo);

/// Return the physical row ids of `data` whose `rid_col` value appears in
/// `rlist`, using the requested strategy.
///
/// - kHashJoin: hash `rlist`, then one sequential scan over `data`
///   (PostgreSQL's choice in the paper; cost ∝ |R_k|).
/// - kMergeJoin: if `clustered_on_rid`, the data side is already ordered so
///   the merge is a single linear pass; otherwise the data side must be
///   sorted first (the slower plan of Fig. 5.7(e)).
/// - kIndexNestedLoop: requires a unique index on `rid_col`; performs
///   |rlist| point lookups (random access; Fig. 5.7(c)/(f)).
std::vector<uint32_t> JoinRids(const Table& data, int rid_col,
                               const std::vector<int64_t>& rlist,
                               JoinAlgorithm algo, bool clustered_on_rid);

/// Checkout join against a compressed rlist (common/ridset.h): no probe-set
/// build and no rlist decompression. When `clustered_on_rid`, the data side
/// is ascending and the set's IntersectToRows kernel walks it
/// container-at-a-time in one serial pass; otherwise the rid column is
/// scanned in parallel chunks probing the set, stitched in row order.
/// Output is identical to JoinRids over the materialized rlist.
std::vector<uint32_t> JoinRidSet(const Table& data, int rid_col,
                                 const orpheus::RidSet& rlist,
                                 bool clustered_on_rid);

}  // namespace orpheus::minidb

#endif  // ORPHEUS_MINIDB_JOIN_H_
