#include "minidb/column.h"

namespace orpheus::minidb {

void Column::EnsureValidity() {
  if (valid_.empty()) valid_.assign(size_, 1);
}

void Column::AppendNull() {
  EnsureValidity();
  switch (type_) {
    case ValueType::kInt64:
      ints_.push_back(0);
      break;
    case ValueType::kDouble:
      doubles_.push_back(0.0);
      break;
    case ValueType::kString:
      strings_.emplace_back();
      break;
    case ValueType::kIntArray:
      arrays_.emplace_back();
      break;
    case ValueType::kNull:
      break;
  }
  valid_.push_back(0);
  ++size_;
}

void Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case ValueType::kInt64:
      // Accept doubles that arrive after a type widen (paper Sec. 4.3 widens
      // the other way; this keeps the engine forgiving in tests).
      if (v.type() == ValueType::kDouble) {
        AppendInt(static_cast<int64_t>(v.AsDouble()));
      } else {
        AppendInt(v.AsInt());
      }
      break;
    case ValueType::kDouble:
      AppendDouble(v.NumericValue());
      break;
    case ValueType::kString:
      AppendString(v.AsString());
      break;
    case ValueType::kIntArray:
      // A compressed payload flows through as a cheap shared_ptr copy.
      if (const auto* set = v.TryRidSet()) {
        AppendRidSet(*set);
      } else {
        AppendIntArray(v.AsIntArray());
      }
      break;
    case ValueType::kNull:
      AppendNull();
      break;
  }
}

Value Column::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case ValueType::kInt64:
      return Value(ints_[i]);
    case ValueType::kDouble:
      return Value(doubles_[i]);
    case ValueType::kString:
      return Value(strings_[i]);
    case ValueType::kIntArray:
      return arrays_[i].set ? Value(arrays_[i].set) : Value(arrays_[i].plain);
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

void Column::SetValue(size_t i, const Value& v) {
  if (v.is_null()) {
    EnsureValidity();
    valid_[i] = 0;
    return;
  }
  if (!valid_.empty()) valid_[i] = 1;
  switch (type_) {
    case ValueType::kInt64:
      ints_[i] = v.type() == ValueType::kDouble
                     ? static_cast<int64_t>(v.AsDouble())
                     : v.AsInt();
      break;
    case ValueType::kDouble:
      doubles_[i] = v.NumericValue();
      break;
    case ValueType::kString:
      strings_[i] = v.AsString();
      break;
    case ValueType::kIntArray:
      if (const auto* set = v.TryRidSet()) {
        arrays_[i] = ArrayCell{{}, *set};
      } else {
        arrays_[i] = MakeArrayCell(v.AsIntArray());
      }
      break;
    case ValueType::kNull:
      break;
  }
}

void Column::SwapRemove(size_t i) {
  switch (type_) {
    case ValueType::kInt64:
      ints_[i] = ints_.back();
      ints_.pop_back();
      break;
    case ValueType::kDouble:
      doubles_[i] = doubles_.back();
      doubles_.pop_back();
      break;
    case ValueType::kString:
      strings_[i] = std::move(strings_.back());
      strings_.pop_back();
      break;
    case ValueType::kIntArray:
      arrays_[i] = std::move(arrays_.back());
      arrays_.pop_back();
      break;
    case ValueType::kNull:
      break;
  }
  if (!valid_.empty()) {
    valid_[i] = valid_.back();
    valid_.pop_back();
  }
  --size_;
}

Status Column::Widen(ValueType to) {
  if (to == type_) return Status::OK();
  if (type_ == ValueType::kInt64 && to == ValueType::kDouble) {
    doubles_.reserve(ints_.size());
    for (int64_t v : ints_) doubles_.push_back(static_cast<double>(v));
    ints_.clear();
    ints_.shrink_to_fit();
    type_ = to;
    return Status::OK();
  }
  if ((type_ == ValueType::kInt64 || type_ == ValueType::kDouble) &&
      to == ValueType::kString) {
    strings_.reserve(size_);
    for (size_t i = 0; i < size_; ++i) {
      strings_.push_back(type_ == ValueType::kInt64
                             ? std::to_string(ints_[i])
                             : std::to_string(doubles_[i]));
    }
    ints_.clear();
    ints_.shrink_to_fit();
    doubles_.clear();
    doubles_.shrink_to_fit();
    type_ = to;
    return Status::OK();
  }
  return Status::NotSupported("unsupported column widening");
}

uint64_t Column::StorageBytes() const {
  uint64_t bytes = 0;
  switch (type_) {
    case ValueType::kInt64:
      bytes = ints_.size() * 8;
      break;
    case ValueType::kDouble:
      bytes = doubles_.size() * 8;
      break;
    case ValueType::kString:
      for (const auto& s : strings_) bytes += s.size() + 4;
      break;
    case ValueType::kIntArray:
      for (const auto& a : arrays_) {
        bytes += a.set ? a.set->SizeBytes() + 16 : a.plain.size() * 8 + 16;
      }
      break;
    case ValueType::kNull:
      break;
  }
  bytes += valid_.size();
  return bytes;
}

}  // namespace orpheus::minidb
