#ifndef ORPHEUS_MINIDB_COLUMN_H_
#define ORPHEUS_MINIDB_COLUMN_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/ridset.h"
#include "common/status.h"
#include "minidb/value.h"

namespace orpheus::minidb {

/// A typed column vector. Tables are stored columnar (Arrow-style) so that
/// wide integer benchmark tables cost 8 bytes per cell rather than a boxed
/// variant, which keeps paper-scale workloads in memory.
///
/// kIntArray cells (the rlist/vlist versioning attributes) hold either a
/// plain vector or a shared compressed RidSet (common/ridset.h). Appends of
/// sorted-unique arrays compress automatically when RidSetEnabled(); callers
/// on the checkout hot path use GetRidSet() to operate on the compressed
/// form directly, while GetIntArray() transparently materializes for legacy
/// code.
class Column {
 public:
  explicit Column(ValueType type) : type_(type) {}

  ValueType type() const { return type_; }
  size_t size() const { return size_; }

  void AppendInt(int64_t v) {
    assert(type_ == ValueType::kInt64);
    ints_.push_back(v);
    NoteValidAppend();
  }
  void AppendDouble(double v) {
    assert(type_ == ValueType::kDouble);
    doubles_.push_back(v);
    NoteValidAppend();
  }
  void AppendString(std::string v) {
    assert(type_ == ValueType::kString);
    strings_.push_back(std::move(v));
    NoteValidAppend();
  }
  void AppendIntArray(std::vector<int64_t> v) {
    assert(type_ == ValueType::kIntArray);
    arrays_.push_back(MakeArrayCell(std::move(v)));
    NoteValidAppend();
  }
  /// Append an already-compressed set cell (must be non-null).
  void AppendRidSet(std::shared_ptr<const orpheus::RidSet> set) {
    assert(type_ == ValueType::kIntArray && set != nullptr);
    arrays_.push_back(ArrayCell{{}, std::move(set)});
    NoteValidAppend();
  }

  /// Append a NULL cell (records a validity hole; the physical slot holds a
  /// zero value).
  void AppendNull();

  /// Append `v`, which must match the column type or be null.
  void AppendValue(const Value& v);

  bool IsNull(size_t i) const {
    return !valid_.empty() && valid_[i] == 0;
  }

  int64_t GetInt(size_t i) const { return ints_[i]; }
  double GetDouble(size_t i) const { return doubles_[i]; }
  const std::string& GetString(size_t i) const { return strings_[i]; }
  const std::vector<int64_t>& GetIntArray(size_t i) const {
    const ArrayCell& cell = arrays_[i];
    return cell.set ? cell.set->Materialized() : cell.plain;
  }
  std::vector<int64_t>& MutableIntArray(size_t i) {
    ArrayCell& cell = arrays_[i];
    if (cell.set) {  // demote to plain; the caller is about to mutate
      cell.plain = cell.set->ToVector();
      cell.set = nullptr;
    }
    return cell.plain;
  }

  /// The compressed payload of cell `i`, or nullptr when the cell is stored
  /// as a plain vector.
  const std::shared_ptr<const orpheus::RidSet>& GetRidSet(size_t i) const {
    return arrays_[i].set;
  }
  /// Overwrite cell `i` with a compressed set (must be non-null).
  void SetRidSet(size_t i, std::shared_ptr<const orpheus::RidSet> set) {
    assert(set != nullptr);
    arrays_[i].plain.clear();
    arrays_[i].plain.shrink_to_fit();
    arrays_[i].set = std::move(set);
    if (!valid_.empty()) valid_[i] = 1;
  }

  /// Boxed accessor (respects nulls).
  Value GetValue(size_t i) const;

  /// Overwrite cell `i` with `v` (type must match; null allowed).
  void SetValue(size_t i, const Value& v);

  /// Approximate heap bytes used by this column's data, mirroring on-disk
  /// accounting (8 bytes per numeric, string payload + length header,
  /// 8 bytes per array element + array header; compressed set cells count
  /// their packed chunk bytes).
  uint64_t StorageBytes() const;

  /// Direct access to the integer payload for tight scan loops.
  const std::vector<int64_t>& int_data() const { return ints_; }

  /// Widen the column to a more general type (paper Sec. 4.3: e.g. integer
  /// -> decimal). Supported: int64 -> double, int64/double -> string.
  Status Widen(ValueType to);

  /// Remove cell `i` by moving the last cell into its place (O(1); row
  /// order is not preserved).
  void SwapRemove(size_t i);

 private:
  /// One kIntArray cell: compressed when `set` is non-null, else `plain`.
  struct ArrayCell {
    std::vector<int64_t> plain;
    std::shared_ptr<const orpheus::RidSet> set;
  };

  /// Compress sorted-unique arrays at insert time when the gate is on.
  static ArrayCell MakeArrayCell(std::vector<int64_t> v) {
    if (orpheus::RidSetEnabled()) {
      if (auto set = orpheus::RidSet::TryFromVector(v)) {
        return ArrayCell{{}, std::move(set)};
      }
    }
    return ArrayCell{std::move(v), nullptr};
  }

  void EnsureValidity();

  // Keep the lazily-allocated validity bitmap in sync on non-null appends.
  void NoteValidAppend() {
    ++size_;
    if (!valid_.empty()) valid_.push_back(1);
  }

  ValueType type_;
  size_t size_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<ArrayCell> arrays_;
  // Validity bitmap, allocated lazily on the first null; empty => all valid.
  std::vector<uint8_t> valid_;
};

}  // namespace orpheus::minidb

#endif  // ORPHEUS_MINIDB_COLUMN_H_
