#ifndef ORPHEUS_MINIDB_SCHEMA_H_
#define ORPHEUS_MINIDB_SCHEMA_H_

#include <string>
#include <vector>

#include "minidb/value.h"

namespace orpheus::minidb {

/// A named, typed column.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kInt64;

  bool operator==(const ColumnDef& o) const {
    return name == o.name && type == o.type;
  }
};

/// An ordered list of columns. Schemas are value types; copying is cheap
/// relative to table data.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> cols) : cols_(std::move(cols)) {}

  size_t num_columns() const { return cols_.size(); }
  const ColumnDef& column(size_t i) const { return cols_[i]; }
  const std::vector<ColumnDef>& columns() const { return cols_; }

  /// Index of the column named `name`, or -1 if absent.
  int FindColumn(const std::string& name) const {
    for (size_t i = 0; i < cols_.size(); ++i) {
      if (cols_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  void AddColumn(ColumnDef col) { cols_.push_back(std::move(col)); }

  void SetColumnType(size_t i, ValueType type) { cols_[i].type = type; }

  bool operator==(const Schema& o) const { return cols_ == o.cols_; }

  std::string ToString() const {
    std::string out = "(";
    for (size_t i = 0; i < cols_.size(); ++i) {
      if (i) out += ", ";
      out += cols_[i].name;
      out += " ";
      out += ValueTypeName(cols_[i].type);
    }
    out += ")";
    return out;
  }

 private:
  std::vector<ColumnDef> cols_;
};

}  // namespace orpheus::minidb

#endif  // ORPHEUS_MINIDB_SCHEMA_H_
