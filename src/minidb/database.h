#ifndef ORPHEUS_MINIDB_DATABASE_H_
#define ORPHEUS_MINIDB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "minidb/table.h"

namespace orpheus::minidb {

/// A named catalog of tables. OrpheusDB's middleware creates CVD backing
/// tables and the temporary staging area (materialized checkout tables)
/// inside one Database, exactly as it would inside one PostgreSQL database.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Create a table; fails with AlreadyExists if the name is taken.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Adopt an already-built table (used when a checkout materializes a
  /// table constructed elsewhere).
  Result<Table*> AdoptTable(Table table);

  /// Pointer to the named table, or nullptr.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  Status DropTable(const std::string& name);
  bool HasTable(const std::string& name) const {
    return tables_.find(name) != tables_.end();
  }

  std::vector<std::string> ListTables() const;

  /// Sum of StorageBytes() over all tables.
  uint64_t TotalStorageBytes() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace orpheus::minidb

#endif  // ORPHEUS_MINIDB_DATABASE_H_
