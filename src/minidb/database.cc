#include "minidb/database.h"

#include "common/string_util.h"

namespace orpheus::minidb {

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  if (HasTable(name)) {
    return Status::AlreadyExists(StrFormat("table %s exists", name.c_str()));
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* ptr = table.get();
  tables_[name] = std::move(table);
  return ptr;
}

Result<Table*> Database::AdoptTable(Table table) {
  const std::string name = table.name();
  if (HasTable(name)) {
    return Status::AlreadyExists(StrFormat("table %s exists", name.c_str()));
  }
  auto owned = std::make_unique<Table>(std::move(table));
  Table* ptr = owned.get();
  tables_[name] = std::move(owned);
  return ptr;
}

Table* Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Database::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrFormat("table %s not found", name.c_str()));
  }
  tables_.erase(it);
  return Status::OK();
}

std::vector<std::string> Database::ListTables() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, t] : tables_) {
    (void)t;
    out.push_back(name);
  }
  return out;
}

uint64_t Database::TotalStorageBytes() const {
  uint64_t bytes = 0;
  for (const auto& [name, t] : tables_) {
    (void)name;
    bytes += t->StorageBytes();
  }
  return bytes;
}

}  // namespace orpheus::minidb
