#include "minidb/csv.h"

#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "common/env.h"
#include "common/file_util.h"
#include "common/string_util.h"

namespace orpheus::minidb {

namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteCell(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Split one CSV record honoring quotes. `pos` advances past the record
/// (including the terminator: \n, \r\n, or a lone \r). `line` is the
/// 1-based physical line where the record starts; it advances past every
/// newline consumed, including newlines embedded in quoted cells. A quote
/// still open at end of input is an error (the file was truncated or the
/// quoting is broken) rather than a silently shortened dataset.
Result<std::vector<std::string>> ParseRecord(const std::string& text,
                                             size_t* pos, size_t* line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  size_t quote_line = 0;
  size_t quote_col = 0;
  size_t i = *pos;
  size_t col = 1;  // 1-based column on the current physical line
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          cur += '"';
          ++i;
          ++col;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
        if (c == '\n') {
          ++*line;
          col = 0;  // the ++col below makes the next char column 1
        }
      }
    } else if (c == '"') {
      in_quotes = true;
      quote_line = *line;
      quote_col = col;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\n' || c == '\r') {
      if (c == '\r' && i + 1 < n && text[i + 1] == '\n') ++i;
      ++i;
      ++*line;
      break;
    } else {
      cur += c;
    }
    ++i;
    ++col;
  }
  if (in_quotes) {
    return Status::InvalidArgument(
        StrFormat("unterminated quoted field: quote opened at line %zu, "
                  "column %zu is still open at end of input",
                  quote_line, quote_col));
  }
  fields.push_back(std::move(cur));
  *pos = i;
  return fields;
}

// Inference predicates delegate to the same strict parsers used by
// ParseCell, so a column can never be inferred as a type its cells then
// fail (or change value) under: an integer overflowing int64 is not "int",
// it widens to double (or string).
bool LooksLikeInt(const std::string& s) {
  return ParseIntStrict(s).has_value();
}

// Locale-independent double parse via std::from_chars: strtod honors
// LC_NUMERIC, so under a de_DE locale "1.5" stops parsing at the '.' and a
// double column silently degrades to string (or worse, "1,5" cells change
// meaning). from_chars always uses the C locale. A single leading '+' is
// allowed for strtod compatibility (from_chars rejects it).
std::optional<double> ParseDoubleStrict(const std::string& s) {
  if (s.empty()) return std::nullopt;
  const size_t begin = s[0] == '+' ? 1 : 0;
  if (begin == s.size()) return std::nullopt;
  double v = 0.0;
  const char* first = s.data() + begin;
  const char* last = s.data() + s.size();
  auto [end, ec] = std::from_chars(first, last, v);
  if (ec != std::errc() || end != last) return std::nullopt;
  return v;
}

bool LooksLikeDouble(const std::string& s) {
  return ParseDoubleStrict(s).has_value();
}

Result<Value> ParseCell(const std::string& text, ValueType type) {
  if (text.empty()) return Value::Null();
  switch (type) {
    case ValueType::kInt64: {
      std::optional<int64_t> v = ParseIntStrict(text);
      if (!v) {
        return Status::InvalidArgument(
            StrFormat("bad int64 cell '%s'", text.c_str()));
      }
      return Value(*v);
    }
    case ValueType::kDouble: {
      std::optional<double> v = ParseDoubleStrict(text);
      if (!v) {
        return Status::InvalidArgument(
            StrFormat("bad double cell '%s'", text.c_str()));
      }
      return Value(*v);
    }
    case ValueType::kString:
      return Value(text);
    default:
      return Status::NotSupported("csv supports int64/double/string");
  }
}

}  // namespace

std::string ToCsv(const Table& table) {
  std::string out;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c) out += ',';
    out += QuoteCell(table.schema().column(c).name);
  }
  out += '\n';
  for (uint32_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c) out += ',';
      Value v = table.GetValue(r, c);
      if (!v.is_null()) out += QuoteCell(v.ToString());
    }
    out += '\n';
  }
  return out;
}

Status WriteCsv(const Table& table, const std::string& path) {
  // Temp-file + atomic rename: a failed or interrupted export never leaves
  // a truncated CSV under the requested name. Durability (fsync) is left
  // to the OS — the export is reproducible from the CVD.
  return WriteFileAtomic(path, ToCsv(table), /*sync=*/false);
}

Result<Schema> ParseSchemaSpec(const std::string& spec) {
  Schema schema;
  for (const auto& raw_line : Split(spec, '\n')) {
    for (const auto& raw : Split(raw_line, ',')) {
      std::string entry(Trim(raw));
      if (entry.empty() || entry[0] == '#') continue;
      auto parts = Split(entry, ':');
      if (parts.size() != 2) {
        return Status::InvalidArgument(
            StrFormat("bad schema entry '%s' (want name:type)",
                      entry.c_str()));
      }
      std::string name(Trim(parts[0]));
      std::string type = ToLower(std::string(Trim(parts[1])));
      ValueType vt;
      if (type == "int" || type == "int64" || type == "integer") {
        vt = ValueType::kInt64;
      } else if (type == "double" || type == "decimal" || type == "float") {
        vt = ValueType::kDouble;
      } else if (type == "string" || type == "text" || type == "varchar") {
        vt = ValueType::kString;
      } else {
        return Status::InvalidArgument(
            StrFormat("unknown type '%s'", type.c_str()));
      }
      schema.AddColumn({name, vt});
    }
  }
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument("empty schema spec");
  }
  return schema;
}

Result<Table> ParseCsv(const std::string& text, const std::string& table_name,
                       const Schema* schema) {
  size_t pos = 0;
  size_t line = 1;
  if (text.empty()) return Status::InvalidArgument("empty csv");
  auto header_or = ParseRecord(text, &pos, &line);
  if (!header_or.ok()) return header_or.status();
  std::vector<std::string> header = header_or.MoveValueOrDie();

  // Collect raw records first (needed for type inference).
  std::vector<std::vector<std::string>> records;
  while (pos < text.size()) {
    const size_t record_line = line;
    auto rec_or = ParseRecord(text, &pos, &line);
    if (!rec_or.ok()) return rec_or.status();
    auto rec = rec_or.MoveValueOrDie();
    if (rec.size() == 1 && rec[0].empty()) continue;  // blank line
    if (rec.size() != header.size()) {
      return Status::InvalidArgument(
          StrFormat("row at line %zu has %zu fields, header has %zu",
                    record_line, rec.size(), header.size()));
    }
    records.push_back(std::move(rec));
  }

  Schema resolved;
  if (schema != nullptr) {
    resolved = *schema;
    if (resolved.num_columns() != header.size()) {
      return Status::InvalidArgument("schema arity != csv header arity");
    }
  } else {
    // Infer each column: int64 if all non-empty cells parse as ints, else
    // double, else string.
    for (size_t c = 0; c < header.size(); ++c) {
      bool all_int = true;
      bool all_double = true;
      for (const auto& rec : records) {
        if (rec[c].empty()) continue;
        if (!LooksLikeInt(rec[c])) all_int = false;
        if (!LooksLikeDouble(rec[c])) all_double = false;
      }
      ValueType vt = all_int ? ValueType::kInt64
                     : all_double ? ValueType::kDouble
                                  : ValueType::kString;
      resolved.AddColumn({header[c], vt});
    }
  }

  Table table(table_name, resolved);
  for (const auto& rec : records) {
    Row row;
    row.reserve(rec.size());
    for (size_t c = 0; c < rec.size(); ++c) {
      auto v = ParseCell(rec[c], resolved.column(c).type);
      if (!v.ok()) return v.status();
      row.push_back(*v);
    }
    table.AppendRowUnchecked(row);
  }
  return table;
}

Result<Table> ReadCsv(const std::string& path, const std::string& table_name,
                      const Schema* schema) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open %s: %s", path.c_str(),
                                      std::strerror(errno)));
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), table_name, schema);
}

}  // namespace orpheus::minidb
