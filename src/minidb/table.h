#ifndef ORPHEUS_MINIDB_TABLE_H_
#define ORPHEUS_MINIDB_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/validation.h"
#include "minidb/column.h"
#include "minidb/schema.h"

namespace orpheus::minidb {

/// A columnar, in-memory table with optional unique integer indexes.
///
/// This is the storage substrate beneath OrpheusDB's CVDs; it plays the role
/// PostgreSQL played in the paper. It supports exactly the physical
/// operations the paper's plans rely on: sequential scans with arbitrary
/// predicates, array-containment filters, unique-index point lookups, and
/// physical re-clustering on a column (Sec. 5.5.5).
class Table {
 public:
  Table(std::string name, Schema schema);

  // Movable, not copyable (copies are explicit via CopyRows/Clone).
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& mutable_column(size_t i) { return columns_[i]; }

  /// Append a row after validating arity and cell types.
  Status InsertRow(const Row& row);

  /// Append a row without validation; caller guarantees schema conformance.
  void AppendRowUnchecked(const Row& row);

  /// Fast path: append a row whose cells are all int64 (wide benchmark
  /// tables). `vals` must have exactly num_columns() entries.
  void AppendIntRowUnchecked(const std::vector<int64_t>& vals);

  /// Bulk append of `nrows` all-int64 rows laid out row-major in `rows`
  /// (nrows * num_columns() values). Column fills run in parallel on the
  /// global thread pool; index maintenance is serial and in row order, so
  /// the result is identical to nrows AppendIntRowUnchecked calls.
  void AppendIntRows(const int64_t* rows, size_t nrows);

  Value GetValue(uint32_t row, size_t col) const {
    return columns_[col].GetValue(row);
  }
  Row GetRow(uint32_t row) const;

  /// Declare the (composite) primary key columns. Enforcement is performed
  /// by callers (e.g. CVD commit checks PK uniqueness per version).
  void SetPrimaryKey(std::vector<int> cols) { pk_cols_ = std::move(cols); }
  const std::vector<int>& primary_key() const { return pk_cols_; }

  /// Build (or rebuild) a unique hash index on integer column `col`.
  /// Subsequent appends maintain the index. Duplicate keys are an error.
  Status BuildUniqueIntIndex(int col);

  /// True if a unique index exists on `col`.
  bool HasUniqueIntIndex(int col) const {
    return indexes_.find(col) != indexes_.end();
  }

  /// Point lookup on a unique integer index; nullopt if key absent.
  /// Requires the index to exist.
  std::optional<uint32_t> LookupUniqueInt(int col, int64_t key) const;

  /// Row ids satisfying `pred` in physical order. `pred` receives the table
  /// and a row id.
  std::vector<uint32_t> SelectRows(
      const std::function<bool(const Table&, uint32_t)>& pred) const;

  /// Row ids whose int-array column `array_col` contains `needle`
  /// (PostgreSQL's `ARRAY[needle] <@ col`). Arrays are kept sorted, so this
  /// is a binary search per row — but still a full-table scan, matching the
  /// combined-table checkout plan.
  std::vector<uint32_t> SelectRowsArrayContains(int array_col,
                                                int64_t needle) const;

  /// Materialize the given rows into a new table with the same schema.
  Table CopyRows(const std::vector<uint32_t>& rows,
                 std::string new_name) const;

  /// Materialize the given rows, keeping only the columns in `cols` (in
  /// that order).
  Table ProjectRows(const std::vector<uint32_t>& rows,
                    const std::vector<int>& cols,
                    std::string new_name) const;

  /// Append the given rows of `src` to this table. `src_cols` maps each of
  /// this table's columns to the source column it is fed from; it defaults
  /// to the identity (schemas must then have equal arity and types).
  void AppendFrom(const Table& src, const std::vector<uint32_t>& rows,
                  const std::vector<int>* src_cols = nullptr);

  /// Full copy.
  Table Clone(std::string new_name) const;

  /// Physically re-cluster the table by ascending values of integer column
  /// `col`; rebuilds any indexes.
  void SortByIntColumn(int col);

  /// Add a column, filling existing rows with NULL (paper Sec. 4.3 single
  /// pool schema evolution).
  Status AddColumn(ColumnDef def);

  /// Widen a column's type (ALTER COLUMN ... TYPE). See Column::Widen.
  Status WidenColumn(int col, ValueType to);

  /// Delete the given rows (sorted, unique) and compact the table; any
  /// indexes are rebuilt. Cost is proportional to the table size, like a
  /// DELETE followed by VACUUM.
  void DeleteRows(const std::vector<uint32_t>& rows);

  /// Overwrite every cell of `row` with the values in `vals` (arity must
  /// match). Models an UPDATE: the whole tuple is rewritten and any indexes
  /// on changed key columns are maintained.
  void SetRow(uint32_t row, const Row& vals);

  /// Emulates PostgreSQL's `SET vlist = vlist + v` UPDATE (Table 4.1): the
  /// entire tuple is read, copied, the array column extended, and the tuple
  /// written back with index maintenance — the write amplification that
  /// makes combined-table/split-by-vlist commits expensive (Fig. 4.1b).
  void RewriteRowAppendToArray(uint32_t row, int array_col, int64_t value);

  /// Check every unique index against the column data: the index holds
  /// exactly one entry per row, each row's key resolves back to that row,
  /// and no phantom entries remain. Appends violations to `report`.
  void ValidateIndexes(ValidationReport* report) const;

  /// Bytes of table data (all columns), mirroring on-disk accounting.
  uint64_t DataBytes() const;
  /// Bytes of index structures (16 bytes per indexed row, roughly a btree
  /// entry: 8-byte key + 8-byte TID).
  uint64_t IndexBytes() const;
  /// DataBytes() + IndexBytes(); this is what Figure 4.1(a) plots.
  uint64_t StorageBytes() const { return DataBytes() + IndexBytes(); }

 private:
  /// Test-only backdoor for the validator tests: corrupts internal state to
  /// verify that ValidateIndexes detects the damage. Defined in the tests.
  friend struct TableTestAccess;

  void MaintainIndexesOnAppend(uint32_t new_row);

  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
  std::vector<int> pk_cols_;
  // col -> (key -> row id)
  std::map<int, std::unordered_map<int64_t, uint32_t>> indexes_;
};

}  // namespace orpheus::minidb

#endif  // ORPHEUS_MINIDB_TABLE_H_
