#include "minidb/join.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "common/metrics.h"
#include "common/ridset.h"
#include "common/thread_pool.h"

namespace orpheus::minidb {

const char* JoinAlgorithmName(JoinAlgorithm algo) {
  switch (algo) {
    case JoinAlgorithm::kHashJoin: return "hash-join";
    case JoinAlgorithm::kMergeJoin: return "merge-join";
    case JoinAlgorithm::kIndexNestedLoop: return "index-nested-loop-join";
  }
  return "?";
}

namespace {

// The scan half of the hash join: the probe set is built once, then the
// data table's rid column is scanned in parallel chunks, each chunk
// emitting its matches in physical order; chunks are stitched back in index
// order, so the output is identical to the serial scan at any pool degree.
constexpr size_t kScanGrain = 1 << 16;

std::vector<uint32_t> HashJoin(const Table& data, int rid_col,
                               const std::vector<int64_t>& rlist) {
  std::unordered_set<int64_t> probe(rlist.begin(), rlist.end());
  const auto& rids = data.column(rid_col).int_data();
  const size_t n = data.num_rows();
  return ParallelCollect<uint32_t>(
      n, kScanGrain,
      [&probe, &rids](size_t lo, size_t hi, std::vector<uint32_t>* out) {
        for (size_t r = lo; r < hi; ++r) {
          if (probe.count(rids[r])) out->push_back(static_cast<uint32_t>(r));
        }
      });
}

std::vector<uint32_t> MergeJoin(const Table& data, int rid_col,
                                const std::vector<int64_t>& rlist,
                                bool clustered_on_rid) {
  // Sorted-merge fast path: checkout rlists are stored sorted, so the sort
  // of the probe side is usually a no-op — detect that instead of paying an
  // unconditional copy + sort.
  std::vector<int64_t> sorted_storage;
  const std::vector<int64_t>* sorted_rlist_ptr = &rlist;
  if (!std::is_sorted(rlist.begin(), rlist.end())) {
    sorted_storage = rlist;
    std::sort(sorted_storage.begin(), sorted_storage.end());
    sorted_rlist_ptr = &sorted_storage;
  }
  const std::vector<int64_t>& sorted_rlist = *sorted_rlist_ptr;

  const auto& rids = data.column(rid_col).int_data();
  const uint32_t n = static_cast<uint32_t>(data.num_rows());
  std::vector<uint32_t> out;
  out.reserve(rlist.size());

  if (clustered_on_rid) {
    // Data side already ordered: single linear merge pass.
    uint32_t i = 0;
    size_t j = 0;
    while (i < n && j < sorted_rlist.size()) {
      if (rids[i] < sorted_rlist[j]) {
        ++i;
      } else if (rids[i] > sorted_rlist[j]) {
        ++j;
      } else {
        out.push_back(i);
        ++i;
        ++j;
      }
    }
    return out;
  }

  // Data side unordered: sort (rid, row) pairs first — the expensive plan.
  std::vector<std::pair<int64_t, uint32_t>> keyed(n);
  for (uint32_t r = 0; r < n; ++r) keyed[r] = {rids[r], r};
  std::sort(keyed.begin(), keyed.end());
  size_t i = 0;
  size_t j = 0;
  while (i < keyed.size() && j < sorted_rlist.size()) {
    if (keyed[i].first < sorted_rlist[j]) {
      ++i;
    } else if (keyed[i].first > sorted_rlist[j]) {
      ++j;
    } else {
      out.push_back(keyed[i].second);
      ++i;
      ++j;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint32_t> IndexNestedLoopJoin(const Table& data, int rid_col,
                                          const std::vector<int64_t>& rlist) {
  assert(data.HasUniqueIntIndex(rid_col) &&
         "index-nested-loop join requires a rid index");
  std::vector<uint32_t> out;
  out.reserve(rlist.size());
  for (int64_t rid : rlist) {
    auto hit = data.LookupUniqueInt(rid_col, rid);
    if (hit) out.push_back(*hit);
  }
  return out;
}

}  // namespace

std::vector<uint32_t> JoinRidSet(const Table& data, int rid_col,
                                 const orpheus::RidSet& rlist,
                                 bool clustered_on_rid) {
  ORPHEUS_TRACE_SPAN("minidb.join.ridset");
  ORPHEUS_COUNTER_ADD("minidb.join.ridset.calls", 1);
  const auto& rids = data.column(rid_col).int_data();
  const size_t n = data.num_rows();
  if (clustered_on_rid) {
    // Single serial container-at-a-time merge; deterministic by
    // construction (no pool involvement).
    std::vector<uint32_t> out;
    out.reserve(rlist.size());
    rlist.IntersectToRows(rids.data(), n, &out);
    return out;
  }
  // Unclustered: parallel chunk scan probing the compressed set; chunks are
  // stitched in index order so the output matches the serial scan at any
  // pool degree.
  return ParallelCollect<uint32_t>(
      n, kScanGrain,
      [&rlist, &rids](size_t lo, size_t hi, std::vector<uint32_t>* out) {
        size_t hint = 0;
        for (size_t r = lo; r < hi; ++r) {
          if (rlist.ContainsHint(rids[r], &hint)) {
            out->push_back(static_cast<uint32_t>(r));
          }
        }
      });
}

std::vector<uint32_t> JoinRids(const Table& data, int rid_col,
                               const std::vector<int64_t>& rlist,
                               JoinAlgorithm algo, bool clustered_on_rid) {
  switch (algo) {
    case JoinAlgorithm::kHashJoin:
      return HashJoin(data, rid_col, rlist);
    case JoinAlgorithm::kMergeJoin:
      return MergeJoin(data, rid_col, rlist, clustered_on_rid);
    case JoinAlgorithm::kIndexNestedLoop:
      return IndexNestedLoopJoin(data, rid_col, rlist);
  }
  return {};
}

}  // namespace orpheus::minidb
