#include "minidb/join.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace orpheus::minidb {

const char* JoinAlgorithmName(JoinAlgorithm algo) {
  switch (algo) {
    case JoinAlgorithm::kHashJoin: return "hash-join";
    case JoinAlgorithm::kMergeJoin: return "merge-join";
    case JoinAlgorithm::kIndexNestedLoop: return "index-nested-loop-join";
  }
  return "?";
}

namespace {

std::vector<uint32_t> HashJoin(const Table& data, int rid_col,
                               const std::vector<int64_t>& rlist) {
  std::unordered_set<int64_t> probe(rlist.begin(), rlist.end());
  const auto& rids = data.column(rid_col).int_data();
  std::vector<uint32_t> out;
  out.reserve(rlist.size());
  const uint32_t n = static_cast<uint32_t>(data.num_rows());
  for (uint32_t r = 0; r < n; ++r) {
    if (probe.count(rids[r])) out.push_back(r);
  }
  return out;
}

std::vector<uint32_t> MergeJoin(const Table& data, int rid_col,
                                const std::vector<int64_t>& rlist,
                                bool clustered_on_rid) {
  std::vector<int64_t> sorted_rlist = rlist;
  std::sort(sorted_rlist.begin(), sorted_rlist.end());

  const auto& rids = data.column(rid_col).int_data();
  const uint32_t n = static_cast<uint32_t>(data.num_rows());
  std::vector<uint32_t> out;
  out.reserve(rlist.size());

  if (clustered_on_rid) {
    // Data side already ordered: single linear merge pass.
    uint32_t i = 0;
    size_t j = 0;
    while (i < n && j < sorted_rlist.size()) {
      if (rids[i] < sorted_rlist[j]) {
        ++i;
      } else if (rids[i] > sorted_rlist[j]) {
        ++j;
      } else {
        out.push_back(i);
        ++i;
        ++j;
      }
    }
    return out;
  }

  // Data side unordered: sort (rid, row) pairs first — the expensive plan.
  std::vector<std::pair<int64_t, uint32_t>> keyed(n);
  for (uint32_t r = 0; r < n; ++r) keyed[r] = {rids[r], r};
  std::sort(keyed.begin(), keyed.end());
  size_t i = 0;
  size_t j = 0;
  while (i < keyed.size() && j < sorted_rlist.size()) {
    if (keyed[i].first < sorted_rlist[j]) {
      ++i;
    } else if (keyed[i].first > sorted_rlist[j]) {
      ++j;
    } else {
      out.push_back(keyed[i].second);
      ++i;
      ++j;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint32_t> IndexNestedLoopJoin(const Table& data, int rid_col,
                                          const std::vector<int64_t>& rlist) {
  assert(data.HasUniqueIntIndex(rid_col) &&
         "index-nested-loop join requires a rid index");
  std::vector<uint32_t> out;
  out.reserve(rlist.size());
  for (int64_t rid : rlist) {
    auto hit = data.LookupUniqueInt(rid_col, rid);
    if (hit) out.push_back(*hit);
  }
  return out;
}

}  // namespace

std::vector<uint32_t> JoinRids(const Table& data, int rid_col,
                               const std::vector<int64_t>& rlist,
                               JoinAlgorithm algo, bool clustered_on_rid) {
  switch (algo) {
    case JoinAlgorithm::kHashJoin:
      return HashJoin(data, rid_col, rlist);
    case JoinAlgorithm::kMergeJoin:
      return MergeJoin(data, rid_col, rlist, clustered_on_rid);
    case JoinAlgorithm::kIndexNestedLoop:
      return IndexNestedLoopJoin(data, rid_col, rlist);
  }
  return {};
}

}  // namespace orpheus::minidb
