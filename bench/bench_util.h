#ifndef ORPHEUS_BENCH_BENCH_UTIL_H_
#define ORPHEUS_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "benchdata/generator.h"
#include "common/env.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/cvd.h"
#include "core/partition_store.h"
#include "core/partitioning.h"
#include "core/version_graph.h"

namespace orpheus::bench {

/// All harnesses run the paper's workloads at a reduced default scale (the
/// substrate is an in-memory engine, not a provisioned PostgreSQL box); pass
/// --scale=N (default 1) to multiply workload sizes toward paper scale.
/// The named aliases small/medium/large map to 1/4/16 for CI recipes.
inline int ParseScale(int argc, char** argv, int def = 1) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--scale=")) {
      const std::string value = arg.substr(8);
      if (value == "small") return 1;
      if (value == "medium") return 4;
      if (value == "large") return 16;
      // Checked parse: --scale=8abc aborts instead of silently running at
      // a truncated (or default) scale and mislabeling the results.
      auto parsed = ParseIntStrict(value);
      if (!parsed || *parsed < 1) {
        std::cerr << "bad " << arg
                  << " (want --scale=<positive int>|small|medium|large)\n";
        std::exit(2);
      }
      return static_cast<int>(*parsed);
    }
  }
  return def;
}

inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) return true;
  }
  return false;
}

/// Path given via `--metrics-json <path>` or `--metrics-json=<path>`, or
/// empty if the flag is absent.
inline std::string MetricsJsonPath(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics-json" && i + 1 < argc) return argv[i + 1];
    if (StartsWith(arg, "--metrics-json=")) return arg.substr(15);
  }
  return std::string();
}

/// Every bench main calls this last: with `--metrics-json <path>` on the
/// command line, the process-wide metrics snapshot (per-stage spans,
/// counters, histograms — see DESIGN.md §8) is written as JSON so the
/// BENCH_* tables gain a machine-readable per-stage breakdown.
inline void ExportMetrics(int argc, char** argv) {
  const std::string path = MetricsJsonPath(argc, argv);
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for --metrics-json\n";
    std::exit(2);
  }
  out << MetricsRegistry::Global().ToJson();
  if (!out.good()) {
    std::cerr << "write failed: " << path << "\n";
    std::exit(2);
  }
  std::cerr << "metrics written to " << path << "\n";
}

/// Path given via `--trace-out <path>` or `--trace-out=<path>`, or empty if
/// the flag is absent.
inline std::string TraceOutPath(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--trace-out" && i + 1 < argc) return argv[i + 1];
    if (StartsWith(arg, "--trace-out=")) return arg.substr(12);
  }
  return std::string();
}

/// Every bench main calls this first: with `--trace-out <path>` on the
/// command line, the flight recorder (DESIGN.md §9) is armed so the whole
/// run is captured into the per-thread ring buffers.
inline void MaybeStartTrace(int argc, char** argv) {
  trace::SetCurrentThreadName("main");
  if (TraceOutPath(argc, argv).empty()) return;
  if (!MetricsEnabled()) {
    std::cerr << "--trace-out requires a build with ORPHEUS_METRICS=ON\n";
    std::exit(2);
  }
  trace::Start();
}

/// Every bench main calls this last: with `--trace-out <path>`, the merged
/// trace is written as Chrome trace-event JSON (chrome://tracing, Perfetto).
inline void ExportTrace(int argc, char** argv) {
  const std::string path = TraceOutPath(argc, argv);
  if (path.empty()) return;
  trace::Stop();
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for --trace-out\n";
    std::exit(2);
  }
  out << trace::ToChromeJson();
  if (!out.good()) {
    std::cerr << "write failed: " << path << "\n";
    std::exit(2);
  }
  std::cerr << "trace written to " << path << " ("
            << trace::NumBufferedEvents() << " events buffered)\n";
}

/// The Table 5.2 datasets, scaled down ~25x by default (I and |R| shrink
/// linearly; |V| and B are preserved except for the 10M variants, whose
/// version count is reduced 5x to bound generation memory).
struct NamedConfig {
  std::string paper_name;
  benchdata::GeneratorConfig config;
};

inline std::vector<NamedConfig> Table52Configs(int scale,
                                               bool include_large = true) {
  using benchdata::CurConfig;
  using benchdata::SciConfig;
  std::vector<NamedConfig> out;
  out.push_back({"SCI_1M", SciConfig("SCI_1M", 1000, 100, 40 * scale)});
  out.push_back({"SCI_2M", SciConfig("SCI_2M", 1000, 100, 80 * scale)});
  out.push_back({"SCI_5M", SciConfig("SCI_5M", 1000, 100, 200 * scale)});
  out.push_back({"SCI_8M", SciConfig("SCI_8M", 1000, 100, 320 * scale)});
  if (include_large) {
    out.push_back({"SCI_10M", SciConfig("SCI_10M", 2000, 200, 200 * scale)});
  }
  out.push_back({"CUR_1M", CurConfig("CUR_1M", 1100, 100, 40 * scale)});
  out.push_back({"CUR_5M", CurConfig("CUR_5M", 1100, 100, 200 * scale)});
  if (include_large) {
    out.push_back({"CUR_10M", CurConfig("CUR_10M", 2200, 200, 100 * scale)});
  }
  return out;
}

/// Version graph of a generated dataset (node sizes + parent edge weights).
inline core::VersionGraph GraphOf(const benchdata::VersionedDataset& ds) {
  core::VersionGraph g;
  for (int v = 0; v < ds.num_versions(); ++v) {
    const auto& spec = ds.version(v);
    std::vector<int64_t> weights;
    weights.reserve(spec.parents.size());
    for (int p : spec.parents) weights.push_back(ds.CommonRecords(p, v));
    g.AddVersion(spec.parents, weights,
                 static_cast<int64_t>(spec.records.size()));
  }
  return g;
}

inline core::RecordSetView ViewOf(const benchdata::VersionedDataset& ds) {
  core::RecordSetView view;
  view.num_versions = ds.num_versions();
  view.records_of = [&ds](int v) -> const std::vector<core::RecordId>& {
    return ds.version(v).records;
  };
  return view;
}

inline core::DatasetAccessor AccessorOf(const benchdata::VersionedDataset& ds) {
  core::DatasetAccessor acc;
  acc.num_versions = ds.num_versions();
  acc.num_attributes = ds.num_attributes();
  acc.records_of = [&ds](int v) -> const std::vector<core::RecordId>& {
    return ds.version(v).records;
  };
  acc.payload_of = [&ds](core::RecordId rid, std::vector<int64_t>* out) {
    *out = ds.RecordPayload(rid);
  };
  return acc;
}

/// Average wall-clock checkout time over up to `samples` randomly selected
/// versions of a partitioned store.
inline double AvgCheckoutSeconds(const core::PartitionedStore& store,
                                 int samples, uint64_t seed = 99) {
  Xorshift rng(seed);
  double total = 0.0;
  int n = std::min(samples, store.num_versions());
  for (int s = 0; s < n; ++s) {
    int v = static_cast<int>(rng.Uniform(store.num_versions()));
    Timer t;
    auto table = store.Checkout(v);
    total += t.ElapsedSeconds();
    if (!table.ok()) {
      std::cerr << "checkout failed: " << table.status().ToString() << "\n";
      std::exit(1);
    }
  }
  return n > 0 ? total / n : 0.0;
}

}  // namespace orpheus::bench

#endif  // ORPHEUS_BENCH_BENCH_UTIL_H_
