// Reproduces Figure 4.1 (a,b,c): storage size, commit time and checkout
// time for the five CVD data models of Chapter 4, on the SCI versioning
// benchmark at four sizes. Also reproduces the Sec. 4.2 commentary
// experiment (delta-based vs split-by-rlist commit with 30% modified
// records).
//
// Expected shape (paper): a-table-per-version ~10x storage of the split
// models; combined-table and split-by-vlist commits are orders of magnitude
// slower than split-by-rlist; delta-based checkout degrades on long chains
// while a-table-per-version checkout is fastest.

#include <iostream>
#include <memory>
#include <unordered_set>

#include "bench/bench_util.h"
#include "common/ridset.h"
#include "core/data_models.h"

namespace orpheus::bench {
namespace {

using core::DataModelBackend;
using core::DataModelType;
using core::NewRecord;
using core::RecordId;

const DataModelType kModels[] = {
    DataModelType::kATablePerVersion, DataModelType::kCombinedTable,
    DataModelType::kSplitByVlist, DataModelType::kSplitByRlist,
    DataModelType::kDeltaBased,
};

minidb::Schema AttrSchema(int num_attributes) {
  std::vector<minidb::ColumnDef> cols;
  for (int a = 0; a < num_attributes; ++a) {
    cols.push_back({StrFormat("a%d", a), minidb::ValueType::kInt64});
  }
  return minidb::Schema(std::move(cols));
}

minidb::Row PayloadRow(const benchdata::VersionedDataset& ds, RecordId rid) {
  minidb::Row row;
  for (int64_t v : ds.RecordPayload(rid)) row.emplace_back(v);
  return row;
}

std::unique_ptr<DataModelBackend> BuildBackend(
    DataModelType type, const benchdata::VersionedDataset& ds) {
  auto backend =
      DataModelBackend::Create(type, AttrSchema(ds.num_attributes()));
  std::vector<char> seen(ds.num_distinct_records(), 0);
  for (int v = 0; v < ds.num_versions(); ++v) {
    const auto& spec = ds.version(v);
    std::vector<NewRecord> fresh;
    for (RecordId rid : spec.records) {
      if (!seen[rid]) {
        seen[rid] = 1;
        fresh.push_back({rid, PayloadRow(ds, rid)});
      }
    }
    Status s = backend->AddVersion(v, spec.records, fresh, spec.parents);
    if (!s.ok()) {
      std::cerr << "AddVersion failed: " << s.ToString() << "\n";
      std::exit(1);
    }
  }
  return backend;
}

struct Measurement {
  uint64_t storage_bytes = 0;
  double commit_seconds = 0.0;
  double checkout_seconds = 0.0;
};

// Median of three trials — the paper's protocol repeats each experiment,
// discards the extremes and averages the rest (Sec. 5.5.1); median-of-3 is
// the equivalent at our repeat count.
template <typename Fn>
double MedianOf3(Fn&& fn) {
  double a = fn();
  double b = fn();
  double c = fn();
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

Measurement Measure(DataModelType type, const benchdata::VersionedDataset& ds) {
  auto backend = BuildBackend(type, ds);
  Measurement m;
  const int latest = ds.num_versions() - 1;
  m.storage_bytes = backend->StorageBytes();

  // Checkout the latest version (Sec. 4.2's protocol).
  m.checkout_seconds = MedianOf3([&]() {
    Timer checkout;
    auto table = backend->Checkout(latest, "t_prime");
    double secs = checkout.ElapsedSeconds();
    if (!table.ok()) {
      std::cerr << "checkout failed: " << table.status().ToString() << "\n";
      std::exit(1);
    }
    return secs;
  });

  // Commit T' straight back as a new, unchanged version (each trial adds a
  // fresh version id; the work per commit is identical).
  const auto& rids = ds.version(latest).records;
  m.commit_seconds = MedianOf3([&]() {
    Timer commit;
    Status s = backend->AddVersion(backend->num_versions(), rids, {},
                                   {latest});
    double secs = commit.ElapsedSeconds();
    if (!s.ok()) {
      std::cerr << "commit failed: " << s.ToString() << "\n";
      std::exit(1);
    }
    return secs;
  });
  return m;
}

// The Sec. 4.2 modified-commit comparison: commit a version whose records
// are `modified_frac` new.
double ModifiedCommitSeconds(DataModelType type,
                             const benchdata::VersionedDataset& ds,
                             double modified_frac) {
  auto backend = BuildBackend(type, ds);
  const int latest = ds.num_versions() - 1;
  std::vector<RecordId> rids = ds.version(latest).records;
  Xorshift rng(5);
  std::vector<NewRecord> fresh;
  RecordId next = ds.num_distinct_records();
  for (auto& rid : rids) {
    if (rng.NextDouble() < modified_frac) {
      rid = next++;
      fresh.push_back({rid, PayloadRow(ds, rid % ds.num_distinct_records())});
    }
  }
  std::sort(rids.begin(), rids.end());
  std::sort(fresh.begin(), fresh.end(),
            [](const NewRecord& a, const NewRecord& b) { return a.rid < b.rid; });
  Timer commit;
  Status s = backend->AddVersion(ds.num_versions(), rids, fresh, {latest});
  double elapsed = commit.ElapsedSeconds();
  if (!s.ok()) {
    std::cerr << "modified commit failed: " << s.ToString() << "\n";
    std::exit(1);
  }
  return elapsed;
}

void Run(int argc, char** argv) {
  int scale = ParseScale(argc, argv);
  auto configs = Table52Configs(scale, /*include_large=*/false);
  configs.resize(4);  // SCI_1M, SCI_2M, SCI_5M, SCI_8M

  std::vector<std::string> header = {"dataset"};
  for (auto model : kModels) header.push_back(core::DataModelTypeName(model));
  TablePrinter storage(header);
  TablePrinter commit(header);
  TablePrinter checkout(header);

  for (const auto& named : configs) {
    std::cerr << "generating " << named.paper_name << "...\n";
    auto ds = benchdata::VersionedDataset::Generate(named.config);
    std::vector<std::string> srow = {named.paper_name};
    std::vector<std::string> mrow = {named.paper_name};
    std::vector<std::string> crow = {named.paper_name};
    for (auto model : kModels) {
      std::cerr << "  " << core::DataModelTypeName(model) << "\n";
      Measurement m = Measure(model, ds);
      srow.push_back(HumanBytes(m.storage_bytes));
      mrow.push_back(HumanSeconds(m.commit_seconds));
      crow.push_back(HumanSeconds(m.checkout_seconds));
    }
    storage.AddRow(srow);
    commit.AddRow(mrow);
    checkout.AddRow(crow);
  }

  std::cout << "\n=== Figure 4.1(a): storage size comparison ===\n";
  storage.Print(std::cout);
  std::cout << "\n=== Figure 4.1(b): commit time comparison "
               "(checkout latest, commit unchanged) ===\n";
  commit.Print(std::cout);
  std::cout << "\n=== Figure 4.1(c): checkout time comparison ===\n";
  checkout.Print(std::cout);

  // Sec. 4.2 commentary: 30%-modified commit, delta-based vs split-by-rlist.
  auto ds = benchdata::VersionedDataset::Generate(
      benchdata::SciConfig("SCI_MOD", 400, 40, 25 * scale));
  TablePrinter mod({"model", "commit (30% modified)"});
  for (auto model :
       {DataModelType::kDeltaBased, DataModelType::kSplitByRlist}) {
    mod.AddRow({core::DataModelTypeName(model),
                HumanSeconds(ModifiedCommitSeconds(model, ds, 0.3))});
  }
  std::cout << "\n=== Sec. 4.2: commit with 30% modified records ===\n";
  mod.Print(std::cout);

  // Compressed membership index (ORPHEUS_RIDSET, same binary): the models
  // whose versioning columns hold rlist/vlist arrays, measured with the
  // gate off then on. Checkout is the paper's hot path; storage shows the
  // bit-packed containers shrinking the versioning data.
  const auto& rs_named = configs[2];  // SCI_5M
  std::cerr << "regenerating " << rs_named.paper_name
            << " for the ridset comparison...\n";
  auto rs_ds = benchdata::VersionedDataset::Generate(rs_named.config);
  TablePrinter ridset_table({"model", "checkout off", "checkout on",
                             "speedup", "storage off", "storage on"});
  for (auto model :
       {DataModelType::kCombinedTable, DataModelType::kSplitByVlist,
        DataModelType::kSplitByRlist, DataModelType::kDeltaBased}) {
    std::cerr << "  " << core::DataModelTypeName(model) << " (off/on)\n";
    SetRidSetEnabled(false);
    Measurement off = Measure(model, rs_ds);
    SetRidSetEnabled(true);
    Measurement on = Measure(model, rs_ds);
    double speedup =
        off.checkout_seconds / std::max(1e-9, on.checkout_seconds);
    ridset_table.AddRow({core::DataModelTypeName(model),
                         HumanSeconds(off.checkout_seconds),
                         HumanSeconds(on.checkout_seconds),
                         StrFormat("%.2fx", speedup),
                         HumanBytes(off.storage_bytes),
                         HumanBytes(on.storage_bytes)});
    // Dynamic names: direct registry handles instead of the literal-name
    // macros.
    auto& reg = MetricsRegistry::Global();
    const std::string prefix =
        StrFormat("bench.ridset.%s", core::DataModelTypeName(model));
    reg.gauge(prefix + ".checkout_off_us")
        .Set(static_cast<int64_t>(off.checkout_seconds * 1e6));
    reg.gauge(prefix + ".checkout_on_us")
        .Set(static_cast<int64_t>(on.checkout_seconds * 1e6));
    reg.gauge(prefix + ".checkout_speedup_x100")
        .Set(static_cast<int64_t>(speedup * 100));
    reg.gauge(prefix + ".storage_off_bytes")
        .Set(static_cast<int64_t>(off.storage_bytes));
    reg.gauge(prefix + ".storage_on_bytes")
        .Set(static_cast<int64_t>(on.storage_bytes));
  }
  std::cout << "\n=== Compressed membership index (ORPHEUS_RIDSET off vs "
               "on, "
            << rs_named.paper_name << ") ===\n";
  ridset_table.Print(std::cout);
}

}  // namespace
}  // namespace orpheus::bench

int main(int argc, char** argv) {
  orpheus::bench::MaybeStartTrace(argc, argv);
  orpheus::bench::Run(argc, argv);
  orpheus::bench::ExportMetrics(argc, argv);
  orpheus::bench::ExportTrace(argc, argv);
}
