// Reproduces Figure 5.8 (storage size vs checkout time trade-off curves for
// LyreSplit vs Agglo vs KMeans on SCI_* and CUR_*) and Figures 5.20/5.21
// (the same trade-off in estimated record units).
//
// Expected shape: all three algorithms trade storage for checkout time;
// LyreSplit dominates — at equal storage it reaches a lower checkout time,
// especially at small budgets.

#include <iostream>

#include "bench/bench_util.h"
#include "common/ridset.h"
#include "core/baselines.h"
#include "core/lyresplit.h"

namespace orpheus::bench {
namespace {

using core::Partitioning;

void SweepDataset(const NamedConfig& named, int checkout_samples) {
  std::cerr << "generating " << named.paper_name << "...\n";
  auto ds = benchdata::VersionedDataset::Generate(named.config);
  auto graph = GraphOf(ds);
  auto view = ViewOf(ds);
  auto accessor = AccessorOf(ds);

  TablePrinter table({"scheme", "param", "partitions", "storage",
                      "versioning", "checkout time", "storage (records)",
                      "checkout cost (records)"});

  auto add_point = [&](const std::string& scheme, const std::string& param,
                       const Partitioning& p) {
    auto costs = core::ComputeExactCosts(view, p);
    auto store = core::PartitionedStore::Build(accessor, p);
    double secs = AvgCheckoutSeconds(store, checkout_samples);
    table.AddRow({scheme, param, StrFormat("%d", p.num_partitions),
                  HumanBytes(store.StorageBytes()),
                  HumanBytes(store.VersioningBytes()), HumanSeconds(secs),
                  StrFormat("%.2fM", costs.storage / 1e6),
                  StrFormat("%.3fM", costs.checkout_avg / 1e6)});
  };

  // LyreSplit: sweep delta.
  for (double delta : {0.05, 0.1, 0.2, 0.35, 0.5, 0.8}) {
    auto r = core::LyreSplitWithDelta(graph, delta);
    add_point("LyreSplit", StrFormat("d=%.2f", delta), r.partitioning);
  }

  // Agglo: sweep the partition capacity BC.
  uint64_t total = static_cast<uint64_t>(ds.num_distinct_records());
  for (double frac : {0.1, 0.25, 0.5, 1.0}) {
    core::AggloOptions opt;
    opt.capacity = static_cast<uint64_t>(frac * static_cast<double>(total));
    auto p = core::AggloPartition(view, opt);
    add_point("Agglo", StrFormat("BC=%.2f|R|", frac), p);
  }

  // KMeans: sweep K. The paper caps KMeans runs at 10 hours; we mirror the
  // cutoff by limiting K on the large datasets.
  bool large = ds.num_bipartite_edges() > 3u * 1000 * 1000;
  std::vector<int> ks = large ? std::vector<int>{5, 10}
                              : std::vector<int>{4, 8, 16, 32};
  for (int k : ks) {
    core::KmeansOptions opt;
    opt.k = k;
    auto p = core::KmeansPartition(view, opt);
    add_point("KMeans", StrFormat("K=%d", k), p);
  }

  std::cout << "\n=== Figures 5.8 / 5.20 / 5.21 — " << named.paper_name
            << " (|V|=" << ds.num_versions()
            << ", |R|=" << ds.num_distinct_records()
            << ", |E|=" << ds.num_bipartite_edges() << ") ===\n";
  table.Print(std::cout);

  // Versioning-table footprint with the compressed membership index off
  // vs on (same binary): one representative LyreSplit point per dataset.
  {
    auto r = core::LyreSplitWithDelta(graph, 0.1);
    SetRidSetEnabled(false);
    auto store_off = core::PartitionedStore::Build(accessor, r.partitioning);
    const uint64_t off_bytes = store_off.VersioningBytes();
    SetRidSetEnabled(true);
    auto store_on = core::PartitionedStore::Build(accessor, r.partitioning);
    const uint64_t on_bytes = store_on.VersioningBytes();
    std::cout << "versioning tables (LyreSplit d=0.10): "
              << HumanBytes(off_bytes) << " plain -> " << HumanBytes(on_bytes)
              << " compressed ("
              << StrFormat("%.2fx",
                           static_cast<double>(off_bytes) /
                               std::max<uint64_t>(1, on_bytes))
              << " smaller)\n";
    // Dynamic names: direct registry handles instead of the literal-name
    // macros.
    auto& reg = MetricsRegistry::Global();
    const std::string prefix = "bench.ridset.versioning." + named.paper_name;
    reg.gauge(prefix + ".off_bytes").Set(static_cast<int64_t>(off_bytes));
    reg.gauge(prefix + ".on_bytes").Set(static_cast<int64_t>(on_bytes));
  }
}

void Run(int argc, char** argv) {
  int scale = ParseScale(argc, argv);
  int samples = HasFlag(argc, argv, "--quick") ? 10 : 40;
  for (const auto& named : Table52Configs(scale)) {
    if (named.paper_name == "SCI_2M" || named.paper_name == "SCI_8M") {
      continue;  // the paper's Figure 5.8 uses the 1M/5M/10M variants
    }
    SweepDataset(named, samples);
  }
}

}  // namespace
}  // namespace orpheus::bench

int main(int argc, char** argv) {
  orpheus::bench::MaybeStartTrace(argc, argv);
  orpheus::bench::Run(argc, argv);
  orpheus::bench::ExportMetrics(argc, argv);
  orpheus::bench::ExportTrace(argc, argv);
}
