// Reproduces Figures 5.17 and 5.19: online maintenance of the partitioning
// while versions stream in, and the migration engine's cost.
//
// (a) The checkout cost under online maintenance diverges slowly from the
//     best cost LyreSplit could achieve; migration triggers when the
//     tolerance factor mu is exceeded, and larger mu triggers less often.
// (b) The intelligent migration engine (patch the closest existing
//     partitions) is several times cheaper than rebuilding from scratch,
//     and cheaper the smaller mu is.

#include <iostream>

#include "bench/bench_util.h"
#include "core/lyresplit.h"
#include "core/online.h"

namespace orpheus::bench {
namespace {

void TrajectorySection(const benchdata::VersionedDataset& ds,
                       double gamma_factor) {
  const int n = ds.num_versions();
  const int warm = n / 10;
  const int sample_every = std::max(1, n / 12);

  struct Track {
    double mu;
    core::VersionGraph graph;
    std::unique_ptr<core::OnlineMaintainer> maint;
    int migrations = 0;
  };
  std::vector<Track> tracks;
  for (double mu : {1.5, 2.0}) {
    tracks.emplace_back();
    tracks.back().mu = mu;
  }
  for (auto& track : tracks) {
    core::OnlineMaintainer::Options opt;
    opt.mu = track.mu;
    opt.gamma_factor = gamma_factor;
    opt.replan_every = 5;
    track.maint =
        std::make_unique<core::OnlineMaintainer>(&track.graph, opt);
    for (int v = 0; v < warm; ++v) {
      const auto& spec = ds.version(v);
      std::vector<int64_t> w;
      for (int p : spec.parents) w.push_back(ds.CommonRecords(p, v));
      track.graph.AddVersion(spec.parents, w,
                             static_cast<int64_t>(spec.records.size()));
    }
    track.maint->Bootstrap(core::LyreSplitForBudget(
        track.graph,
        static_cast<uint64_t>(gamma_factor *
                              static_cast<double>(
                                  track.graph.TotalBipartiteEdges()))));
  }

  TablePrinter table({"commits", "C*avg (LyreSplit)", "Cavg (mu=1.5)",
                      "Cavg (mu=2)", "migrations (1.5/2)"});
  for (int v = warm; v < n; ++v) {
    for (auto& track : tracks) {
      const auto& spec = ds.version(v);
      std::vector<int64_t> w;
      for (int p : spec.parents) w.push_back(ds.CommonRecords(p, v));
      track.graph.AddVersion(spec.parents, w,
                             static_cast<int64_t>(spec.records.size()));
      bool migrate = false;
      track.maint->OnCommit(v, &migrate);
      if (migrate) {
        track.maint->OnMigrated();
        ++track.migrations;
      }
    }
    if ((v - warm) % sample_every == 0 || v == n - 1) {
      table.AddRow(
          {StrFormat("%d", v + 1),
           StrFormat("%.3fM", tracks[0].maint->best_checkout_cost() / 1e6),
           StrFormat("%.3fM",
                     tracks[0].maint->current_checkout_cost() / 1e6),
           StrFormat("%.3fM",
                     tracks[1].maint->current_checkout_cost() / 1e6),
           StrFormat("%d / %d", tracks[0].migrations,
                     tracks[1].migrations)});
    }
  }
  std::cout << "\n=== Figure 5.17(a)/5.19(a): online maintenance "
            << "(gamma = " << gamma_factor << "|R|) ===\n";
  table.Print(std::cout);
}

void MigrationSection(const benchdata::VersionedDataset& ds,
                      double gamma_factor) {
  const int n = ds.num_versions();
  const int warm = n / 10;

  TablePrinter table({"mu", "migrations", "avg intell time", "avg naive time",
                      "intell/naive work"});
  for (double mu : {1.05, 1.2, 1.5, 2.0}) {
    core::VersionGraph graph;
    core::OnlineMaintainer::Options opt;
    opt.mu = mu;
    opt.gamma_factor = gamma_factor;
    opt.replan_every = 5;
    core::OnlineMaintainer maint(&graph, opt);

    auto accessor = AccessorOf(ds);
    for (int v = 0; v < warm; ++v) {
      const auto& spec = ds.version(v);
      std::vector<int64_t> w;
      for (int p : spec.parents) w.push_back(ds.CommonRecords(p, v));
      graph.AddVersion(spec.parents, w,
                       static_cast<int64_t>(spec.records.size()));
    }
    auto initial = core::LyreSplitForBudget(
        graph, static_cast<uint64_t>(
                   gamma_factor *
                   static_cast<double>(graph.TotalBipartiteEdges())));
    maint.Bootstrap(initial);
    core::DatasetAccessor head = accessor;
    head.num_versions = warm;
    auto store = core::PartitionedStore::Build(head, initial.partitioning);

    int migrations = 0;
    double intell_total = 0.0;
    double naive_total = 0.0;
    uint64_t intell_work = 0;
    uint64_t naive_work = 0;
    for (int v = warm; v < n; ++v) {
      const auto& spec = ds.version(v);
      std::vector<int64_t> w;
      for (int p : spec.parents) w.push_back(ds.CommonRecords(p, v));
      graph.AddVersion(spec.parents, w,
                       static_cast<int64_t>(spec.records.size()));
      head.num_versions = v + 1;
      bool migrate = false;
      int old_parts = maint.current().num_partitions;
      int part = maint.OnCommit(v, &migrate);
      auto added =
          store.AddVersion(head, v, part >= old_parts ? -1 : part);
      if (!added.ok()) {
        std::cerr << added.status().ToString() << "\n";
        std::exit(1);
      }
      if (migrate) {
        maint.OnMigrated();
        const auto& target = maint.current();
        // Naive cost: rebuild everything from scratch.
        Timer naive_timer;
        auto rebuilt = core::PartitionedStore::Build(head, target);
        naive_total += naive_timer.ElapsedSeconds();
        naive_work += rebuilt.TotalDataRecords();
        // Intelligent: patch the existing partitions.
        Timer intell_timer;
        intell_work += store.MigrateTo(head, target, /*intelligent=*/true);
        intell_total += intell_timer.ElapsedSeconds();
        ++migrations;
      }
    }
    table.AddRow(
        {StrFormat("%.2f", mu), StrFormat("%d", migrations),
         migrations ? HumanSeconds(intell_total / migrations) : "-",
         migrations ? HumanSeconds(naive_total / migrations) : "-",
         naive_work ? StrFormat("%.2f", static_cast<double>(intell_work) /
                                            static_cast<double>(naive_work))
                    : "-"});
  }
  std::cout << "\n=== Figure 5.17(b)/5.19(b): migration time, intelligent "
            << "vs naive (gamma = " << gamma_factor << "|R|) ===\n";
  table.Print(std::cout);
}

void Run(int argc, char** argv) {
  int scale = ParseScale(argc, argv);
  // The paper streams SCI_10M (10K versions); we use the scaled variant.
  auto config = benchdata::SciConfig("SCI_10M", 2000, 200, 100 * scale);
  std::cerr << "generating SCI_10M (scaled)...\n";
  auto ds = benchdata::VersionedDataset::Generate(config);
  for (double gamma : {1.5, 2.0}) {
    TrajectorySection(ds, gamma);
    MigrationSection(ds, gamma);
  }
}

}  // namespace
}  // namespace orpheus::bench

int main(int argc, char** argv) {
  orpheus::bench::MaybeStartTrace(argc, argv);
  orpheus::bench::Run(argc, argv);
  orpheus::bench::ExportMetrics(argc, argv);
  orpheus::bench::ExportTrace(argc, argv);
}
