// Reproduces Table 5.2: the description of the versioning benchmark
// datasets (|V|, |R|, |E|, B, I, and |R̂| for the CUR DAG workloads).
// |R̂| is the number of records conceptually duplicated when the DAG is
// reduced to a tree (Sec. 5.3.1); the paper reports it at 7-10% of |R|.

#include <iostream>

#include "bench/bench_util.h"

namespace orpheus::bench {
namespace {

std::string Pretty(uint64_t n) {
  if (n >= 1000000) return StrFormat("%.1fM", n / 1e6);
  if (n >= 1000) return StrFormat("%.0fK", n / 1e3);
  return StrFormat("%llu", static_cast<unsigned long long>(n));
}

void Run(int argc, char** argv) {
  int scale = ParseScale(argc, argv);
  TablePrinter table({"dataset", "|V|", "|R|", "|E|", "|B|", "|I|", "|R^|"});
  for (const auto& named : Table52Configs(scale)) {
    std::cerr << "generating " << named.paper_name << "...\n";
    auto ds = benchdata::VersionedDataset::Generate(named.config);
    auto graph = GraphOf(ds);
    int64_t duplicated = 0;
    graph.ToTree(&duplicated);
    table.AddRow({named.paper_name, Pretty(ds.num_versions()),
                  Pretty(ds.num_distinct_records()),
                  Pretty(ds.num_bipartite_edges()),
                  Pretty(named.config.num_branches),
                  Pretty(named.config.ops_per_version),
                  graph.IsDag() ? Pretty(duplicated) : "-"});
  }
  std::cout << "\n=== Table 5.2: dataset description (scaled) ===\n";
  table.Print(std::cout);
}

}  // namespace
}  // namespace orpheus::bench

int main(int argc, char** argv) {
  orpheus::bench::MaybeStartTrace(argc, argv);
  orpheus::bench::Run(argc, argv);
  orpheus::bench::ExportMetrics(argc, argv);
  orpheus::bench::ExportTrace(argc, argv);
}
