// Benchmarks the concurrent multi-session layer (DESIGN.md §13): N
// sessions commit against one CVD through a shared durable repository,
// each owning one key so every reconciliation is a clean record-level
// merge. Reported per degree (1/4/8 sessions):
//
//   - commit throughput (commits/s) and total wall time;
//   - reconciliations (commits whose base had been overtaken);
//   - WAL fsyncs per commit — the group-commit leader batches every
//     committer waiting behind one fsync, so the ratio must fall below
//     1.0 once sessions actually contend (degree 8).
//
// Degree 1 is the no-contention baseline: no reconciliation, one fsync
// per commit (ratio 1.0).

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "minidb/schema.h"
#include "minidb/table.h"
#include "minidb/value.h"
#include "session/session.h"
#include "storage/repository.h"

namespace orpheus::bench {
namespace {

using minidb::Schema;
using minidb::Table;
using minidb::Value;
using minidb::ValueType;

std::string MakeTempDir() {
  std::string tmpl = "/tmp/orpheus_bench_session_XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) {
    std::cerr << "mkdtemp failed for " << tmpl << "\n";
    std::exit(1);
  }
  return tmpl;
}

/// Set the name attribute of the row whose id is `id` (schema: _rid, id,
/// name). The seed is tiny, so a scan is fine.
void SetName(Table* t, int64_t id, const std::string& name) {
  for (uint32_t r = 0; r < t->num_rows(); ++r) {
    if (t->GetValue(r, 1).AsInt() == id) {
      minidb::Row vals = t->GetRow(r);
      vals[2] = Value(name);
      t->SetRow(r, vals);
      return;
    }
  }
  std::cerr << "no row with id " << id << "\n";
  std::exit(1);
}

struct DegreeResult {
  int degree = 0;
  uint64_t commits = 0;
  uint64_t reconciled = 0;
  uint64_t wal_syncs = 0;
  double seconds = 0.0;
};

DegreeResult RunDegree(int degree, int iters, int seed_rows) {
  const std::string dir = MakeTempDir();
  auto repo_or = storage::Repository::Open(dir);
  if (!repo_or.ok()) {
    std::cerr << "open failed: " << repo_or.status().ToString() << "\n";
    std::exit(1);
  }
  auto repo = repo_or.MoveValueOrDie();

  Table seed("seed", Schema({{"id", ValueType::kInt64},
                             {"name", ValueType::kString}}));
  for (int i = 0; i < seed_rows; ++i) {
    ORPHEUS_CHECK_OK(seed.InsertRow(
        {Value(static_cast<int64_t>(i + 1)), Value("r" + std::to_string(i))}));
  }
  core::Cvd::Options opts;
  opts.primary_key = {"id"};
  auto cvd = core::Cvd::Init("t", std::move(seed), opts).MoveValueOrDie();
  ORPHEUS_CHECK_OK(repo->LogCreate(*cvd));
  session::SessionManager manager(std::move(cvd), repo.get());

  const uint64_t syncs_before =
      MetricsRegistry::Global().counter("storage.wal.syncs").value();
  std::atomic<uint64_t> reconciled{0};
  Timer timer;
  ThreadPool pool(degree);
  {
    ThreadPool::TaskGroup group(&pool);
    for (int w = 0; w < degree; ++w) {
      group.Submit([&, w] {
        auto s = manager.Open();
        for (int it = 0; it < iters; ++it) {
          ORPHEUS_CHECK_OK(s->Refresh());
          ORPHEUS_CHECK_OK(s->Checkout({s->watermark()}, "work"));
          SetName(s->table("work"), w + 1,
                  "w" + std::to_string(w) + "_" + std::to_string(it));
          auto out = s->Commit("work", "bench");
          ORPHEUS_CHECK_OK(out.status());
          if (!out->conflicts.empty()) {
            std::cerr << "unexpected conflict at degree " << degree << "\n";
            std::exit(1);
          }
          if (out->reconciled) {
            reconciled.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    group.Wait();
  }

  DegreeResult result;
  result.degree = degree;
  result.seconds = timer.ElapsedSeconds();
  result.commits = static_cast<uint64_t>(degree) * iters;
  result.reconciled = reconciled.load();
  result.wal_syncs =
      MetricsRegistry::Global().counter("storage.wal.syncs").value() -
      syncs_before;
  if (manager.failed()) {
    std::cerr << "manager poisoned at degree " << degree << "\n";
    std::exit(1);
  }
  auto released = manager.Release();
  ORPHEUS_CHECK_OK(repo->Close({released.get()}));
  return result;
}

void Run(int argc, char** argv) {
  const int scale = ParseScale(argc, argv);
  const int iters = 50 * scale;
  const int seed_rows = 64;
  if (!MetricsEnabled()) {
    std::cerr << "bench_session needs a metrics build (ORPHEUS_METRICS=ON "
                 "and the ORPHEUS_METRICS env var not 0) to count WAL "
                 "fsyncs\n";
    std::exit(2);
  }

  TablePrinter table({"sessions", "commits", "reconciled", "wall",
                      "commits/s", "fsyncs/commit"});
  auto& reg = MetricsRegistry::Global();
  for (int degree : {1, 4, 8}) {
    DegreeResult r = RunDegree(degree, iters, seed_rows);
    const double per_sec = r.commits / std::max(1e-9, r.seconds);
    const double fsyncs_per_commit =
        static_cast<double>(r.wal_syncs) / std::max<uint64_t>(1, r.commits);
    table.AddRow({std::to_string(r.degree), std::to_string(r.commits),
                  std::to_string(r.reconciled), HumanSeconds(r.seconds),
                  StrFormat("%.0f", per_sec),
                  StrFormat("%.3f", fsyncs_per_commit)});
    const std::string prefix = StrFormat("bench.session.d%d", r.degree);
    reg.gauge(prefix + ".commits").Set(static_cast<int64_t>(r.commits));
    reg.gauge(prefix + ".reconciled").Set(static_cast<int64_t>(r.reconciled));
    reg.gauge(prefix + ".wal_syncs").Set(static_cast<int64_t>(r.wal_syncs));
    reg.gauge(prefix + ".commits_per_sec")
        .Set(static_cast<int64_t>(per_sec));
    reg.gauge(prefix + ".fsyncs_per_commit_x1000")
        .Set(static_cast<int64_t>(fsyncs_per_commit * 1000));
    if (degree == 8 && fsyncs_per_commit >= 1.0) {
      std::cerr << "group commit failed to amortize: " << fsyncs_per_commit
                << " fsyncs/commit at 8 sessions\n";
      std::exit(1);
    }
  }
  std::cout << "\n=== Concurrent sessions: optimistic commits through one "
               "durable repository (group-commit WAL) ===\n";
  table.Print(std::cout);
}

}  // namespace
}  // namespace orpheus::bench

int main(int argc, char** argv) {
  orpheus::bench::MaybeStartTrace(argc, argv);
  orpheus::bench::Run(argc, argv);
  orpheus::bench::ExportMetrics(argc, argv);
  orpheus::bench::ExportTrace(argc, argv);
}
