// Benchmarks the network session layer (DESIGN.md §14): N remote clients
// drive commit loops against one orpheusd-style SessionServer over a unix
// socket, backed by a durable repository. Two modes per degree (1/4/8
// clients):
//
//   - clean: a healthy network — measures pure wire + session overhead;
//   - fault5: every net.* failpoint site misfires with ~5% probability
//     (deterministically seeded) — measures what retry/backoff and the
//     exactly-once stamp machinery cost under sustained packet loss.
//
// After every run the version ledger is audited: the CVD must hold exactly
// 1 + sum(1 + reconciled) versions — a fault mix that produced a phantom
// or duplicate commit fails the bench, not just a test.

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "core/cvd.h"
#include "minidb/schema.h"
#include "minidb/table.h"
#include "minidb/value.h"
#include "net/client.h"
#include "net/server.h"
#include "session/session.h"
#include "storage/repository.h"

namespace orpheus::bench {
namespace {

using minidb::Schema;
using minidb::Table;
using minidb::Value;
using minidb::ValueType;

constexpr const char* kFaultSpec =
    "net.server.recv=error:p0.05;net.server.send=error:p0.05;"
    "net.client.send=error:p0.05;net.client.recv=error:p0.05;"
    "net.server.drop_before_send=error:p0.03;"
    "net.server.drop_after_read=error:p0.03;"
    "net.server.send.partial=error:p0.02;"
    "net.client.send.partial=error:p0.02";

std::string MakeTempDir() {
  std::string tmpl = "/tmp/orpheus_bench_net_XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) {
    std::cerr << "mkdtemp failed for " << tmpl << "\n";
    std::exit(1);
  }
  return tmpl;
}

/// Set the name attribute of the row whose id is `id` (checked-out schema:
/// _rid, id, name). The seed is tiny, so a scan is fine.
void SetName(Table* t, int64_t id, const std::string& name) {
  for (uint32_t r = 0; r < t->num_rows(); ++r) {
    if (t->GetValue(r, 1).AsInt() == id) {
      minidb::Row vals = t->GetRow(r);
      vals[2] = Value(name);
      t->SetRow(r, vals);
      return;
    }
  }
  std::cerr << "no row with id " << id << "\n";
  std::exit(1);
}

struct DegreeResult {
  int degree = 0;
  bool faulty = false;
  uint64_t commits = 0;
  uint64_t reconciled = 0;
  uint64_t client_retries = 0;
  uint64_t reconnects = 0;
  uint64_t replayed = 0;
  uint64_t resumed = 0;
  double seconds = 0.0;
};

/// DeadlineExceeded / Unavailable = outcome unknown, retry (a commit's
/// stamp stays pinned, so the retry resolves it); anything else is a
/// definitive verdict.
bool Unknown(const Status& s) {
  return s.IsDeadlineExceeded() || s.IsUnavailable();
}

DegreeResult RunDegree(int degree, int iters, bool faulty, int seed_rows) {
  const std::string dir = MakeTempDir();
  auto repo_or = storage::Repository::Open(dir + "/repo");
  if (!repo_or.ok()) {
    std::cerr << "open failed: " << repo_or.status().ToString() << "\n";
    std::exit(1);
  }
  auto repo = repo_or.MoveValueOrDie();

  Table seed("seed", Schema({{"id", ValueType::kInt64},
                             {"name", ValueType::kString}}));
  for (int i = 0; i < seed_rows; ++i) {
    ORPHEUS_CHECK_OK(seed.InsertRow(
        {Value(static_cast<int64_t>(i + 1)), Value("r" + std::to_string(i))}));
  }
  core::Cvd::Options cvd_opts;
  cvd_opts.primary_key = {"id"};
  std::vector<std::unique_ptr<core::Cvd>> cvds;
  cvds.push_back(
      core::Cvd::Init("t", std::move(seed), cvd_opts).MoveValueOrDie());
  ORPHEUS_CHECK_OK(repo->LogCreate(*cvds[0]));

  net::ServerOptions server_opts;
  server_opts.listen = "unix:" + dir + "/sock";
  auto started =
      net::SessionServer::Start(repo.get(), std::move(cvds), server_opts);
  ORPHEUS_CHECK_OK(started.status());
  net::SessionServer* server = started.ValueOrDie().get();

  if (faulty) {
    failpoint::Reseed(777);
    ORPHEUS_CHECK_OK(failpoint::ArmFromSpec(kFaultSpec));
  }

  std::vector<uint64_t> retries(degree, 0);
  std::vector<uint64_t> reconnects(degree, 0);
  std::vector<uint64_t> reconciled(degree, 0);
  std::vector<uint64_t> confirmed(degree, 0);
  Timer timer;
  ThreadPool pool(degree);
  {
    ThreadPool::TaskGroup group(&pool);
    for (int w = 0; w < degree; ++w) {
      group.Submit([&, w] {
        net::ClientOptions copts;
        copts.client_uuid = "bench-" + std::to_string(w);
        copts.jitter_seed = 1000 + w;
        copts.call_deadline_ms = 8000;
        copts.max_attempts = 12;
        copts.backoff_base_ms = 2;
        copts.backoff_cap_ms = 100;
        auto connected = net::Client::Connect(server->address(), copts);
        for (int tries = 0; !connected.ok() && tries < 10; ++tries) {
          connected = net::Client::Connect(server->address(), copts);
        }
        ORPHEUS_CHECK_OK(connected.status());
        net::Client* c = connected.ValueOrDie().get();
        auto opened = c->Open("t");
        ORPHEUS_CHECK_OK(opened.status());
        const uint64_t sid = opened.ValueOrDie().sid;
        for (int it = 0; it < iters; ++it) {
          // Refresh -> checkout the watermark -> update the worker's own
          // key -> commit, retrying every unknown outcome to resolution.
          Result<core::VersionId> watermark =
              Status::Unavailable("not tried");
          for (int tries = 0; tries < 10; ++tries) {
            watermark = c->Refresh(sid);
            if (watermark.ok() || !Unknown(watermark.status())) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
          }
          ORPHEUS_CHECK_OK(watermark.status());
          Result<Table> checked = Status::Unavailable("not tried");
          for (int tries = 0; tries < 10; ++tries) {
            checked = c->Checkout(sid, {watermark.ValueOrDie()}, "work");
            if (checked.ok() || !Unknown(checked.status())) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
          }
          ORPHEUS_CHECK_OK(checked.status());
          Table table = checked.MoveValueOrDie();
          SetName(&table, w + 1,
                  "w" + std::to_string(w) + "_" + std::to_string(it));
          bool resolved = false;
          for (int tries = 0; tries < 10; ++tries) {
            auto outcome = c->Commit(sid, table, "bench", "bench");
            if (outcome.ok()) {
              ++confirmed[w];
              if (outcome.ValueOrDie().reconciled) ++reconciled[w];
              resolved = true;
              break;
            }
            if (!Unknown(outcome.status())) {
              std::cerr << "definitive commit error: "
                        << outcome.status().ToString() << "\n";
              std::exit(1);
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
          }
          if (!resolved) {
            std::cerr << "commit outcome never resolved at degree "
                      << degree << "\n";
            std::exit(1);
          }
        }
        ORPHEUS_IGNORE_ERROR(c->CloseSession(sid));
        retries[w] = c->stats().retries;
        reconnects[w] = c->stats().reconnects;
      });
    }
    group.Wait();
  }

  DegreeResult result;
  result.degree = degree;
  result.faulty = faulty;
  result.seconds = timer.ElapsedSeconds();
  for (int w = 0; w < degree; ++w) {
    result.commits += confirmed[w];
    result.reconciled += reconciled[w];
    result.client_retries += retries[w];
    result.reconnects += reconnects[w];
  }
  if (faulty) failpoint::DisarmAll();

  // Audit the ledger over the wire: exactly one version per confirmed
  // commit plus one per reconciliation merge — no phantoms, no duplicates.
  const uint64_t expected_versions = 1 + result.commits + result.reconciled;
  {
    auto auditor = net::Client::Connect(server->address());
    ORPHEUS_CHECK_OK(auditor.status());
    auto listing = auditor.ValueOrDie()->Ls();
    ORPHEUS_CHECK_OK(listing.status());
    if (listing.ValueOrDie().size() != 1 ||
        listing.ValueOrDie()[0].num_versions !=
            static_cast<int64_t>(expected_versions)) {
      std::cerr << "version accounting broken at degree " << degree
                << " (faulty=" << faulty << "): expected "
                << expected_versions << "\n";
      std::exit(1);
    }
    if (listing.ValueOrDie()[0].failed) {
      std::cerr << "repository degraded at degree " << degree << "\n";
      std::exit(1);
    }
  }

  const auto stats = server->stats();
  result.replayed = stats.commits_replayed;
  result.resumed = stats.commits_resumed;
  if (stats.commits != result.commits) {
    std::cerr << "server executed " << stats.commits << " commits but "
              << result.commits << " were confirmed — exactly-once broken\n";
    std::exit(1);
  }
  server->Stop();
  auto released = started.ValueOrDie()->ReleaseCvds();
  std::vector<const core::Cvd*> ptrs;
  for (const auto& cvd : released) ptrs.push_back(cvd.get());
  ORPHEUS_CHECK_OK(repo->Close(ptrs));
  return result;
}

void Run(int argc, char** argv) {
  const int scale = ParseScale(argc, argv);
  const int iters = 10 * scale;
  const int seed_rows = 16;

  TablePrinter table({"mode", "clients", "commits", "reconciled", "retries",
                      "replayed", "resumed", "wall", "commits/s"});
  auto& reg = MetricsRegistry::Global();
  std::vector<bool> modes = {false};
#if ORPHEUS_FAILPOINTS_ENABLED
  modes.push_back(true);
#else
  std::cerr << "failpoints compiled out: skipping the fault5 rows\n";
#endif
  for (const bool faulty : modes) {
    for (int degree : {1, 4, 8}) {
      DegreeResult r = RunDegree(degree, iters, faulty, seed_rows);
      const double per_sec = r.commits / std::max(1e-9, r.seconds);
      const std::string mode = faulty ? "fault5" : "clean";
      table.AddRow({mode, std::to_string(r.degree),
                    std::to_string(r.commits), std::to_string(r.reconciled),
                    std::to_string(r.client_retries),
                    std::to_string(r.replayed), std::to_string(r.resumed),
                    HumanSeconds(r.seconds), StrFormat("%.0f", per_sec)});
      const std::string prefix =
          StrFormat("bench.net_session.%s.d%d", mode.c_str(), r.degree);
      reg.gauge(prefix + ".commits").Set(static_cast<int64_t>(r.commits));
      reg.gauge(prefix + ".reconciled")
          .Set(static_cast<int64_t>(r.reconciled));
      reg.gauge(prefix + ".client_retries")
          .Set(static_cast<int64_t>(r.client_retries));
      reg.gauge(prefix + ".reconnects")
          .Set(static_cast<int64_t>(r.reconnects));
      reg.gauge(prefix + ".commits_replayed")
          .Set(static_cast<int64_t>(r.replayed));
      reg.gauge(prefix + ".commits_resumed")
          .Set(static_cast<int64_t>(r.resumed));
      reg.gauge(prefix + ".commits_per_sec")
          .Set(static_cast<int64_t>(per_sec));
    }
  }
  std::cout << "\n=== Remote sessions: wire-protocol commits, clean vs "
               "~5%-fault network (exactly-once audited) ===\n";
  table.Print(std::cout);
}

}  // namespace
}  // namespace orpheus::bench

int main(int argc, char** argv) {
  orpheus::bench::MaybeStartTrace(argc, argv);
  orpheus::bench::Run(argc, argv);
  orpheus::bench::ExportMetrics(argc, argv);
  orpheus::bench::ExportTrace(argc, argv);
}
