// Reproduces the Chapter 8 preliminary evaluation (Sec. 8.8): precision and
// recall of inferred lineage edges on repositories with known ground truth,
// and the accuracy of the structural (operation) explanations.
//
// Expected shape: with timestamps available, precision/recall stay high and
// degrade gracefully as the per-commit edit rate grows (similar versions
// become harder to tell apart); row-preserving operations are explained
// correctly.

#include <iostream>
#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "provenance/explanation.h"
#include "provenance/inference.h"

namespace orpheus::bench {
namespace {

using namespace orpheus::provenance;  // NOLINT
using minidb::Row;
using minidb::Schema;
using minidb::Table;
using minidb::Value;
using minidb::ValueType;

struct Repo {
  std::vector<std::unique_ptr<Table>> tables;
  std::vector<std::vector<int>> true_parents;
  std::vector<Operation> true_ops;  // op applied to derive version v
  std::vector<DatasetVersion> versions;
};

Table MakeBase(int rows, uint64_t seed) {
  Table t("base", Schema({{"id", ValueType::kInt64},
                          {"city", ValueType::kString},
                          {"score", ValueType::kInt64}}));
  Xorshift rng(seed);
  for (int i = 0; i < rows; ++i) {
    t.AppendRowUnchecked({Value(static_cast<int64_t>(i)),
                          Value("city" + std::to_string(rng.Uniform(25))),
                          Value(static_cast<int64_t>(rng.Uniform(1000)))});
  }
  return t;
}

Repo MakeRepo(int n, int edits, bool timestamps, uint64_t seed) {
  Repo repo;
  Xorshift rng(seed);
  repo.tables.push_back(std::make_unique<Table>(MakeBase(300, seed)));
  repo.true_parents.push_back({});
  repo.true_ops.push_back(Operation::kIdentity);
  for (int v = 1; v < n; ++v) {
    int parent = v > 2 && rng.Bernoulli(0.25)
                     ? static_cast<int>(rng.Uniform(v))
                     : v - 1;
    Table next = repo.tables[parent]->Clone("v" + std::to_string(v));
    Operation op;
    double dice = rng.NextDouble();
    if (dice < 0.5) {
      op = Operation::kUpdate;
      for (int e = 0; e < edits; ++e) {
        uint32_t r = static_cast<uint32_t>(rng.Uniform(next.num_rows()));
        Row row = next.GetRow(r);
        row[2] = Value(static_cast<int64_t>(rng.Uniform(1000)));
        next.SetRow(r, row);
      }
    } else if (dice < 0.75) {
      op = Operation::kAppend;
      for (int e = 0; e < edits; ++e) {
        next.AppendRowUnchecked(
            {Value(static_cast<int64_t>(100000 + v * 1000 + e)),
             Value("new"), Value(int64_t{1})});
      }
    } else {
      op = Operation::kSelection;
      std::vector<uint32_t> dead;
      auto sample = rng.SampleWithoutReplacement(next.num_rows(),
                                                 static_cast<uint64_t>(edits));
      dead.assign(sample.begin(), sample.end());
      std::sort(dead.begin(), dead.end());
      next.DeleteRows(dead);
    }
    repo.tables.push_back(std::make_unique<Table>(std::move(next)));
    repo.true_parents.push_back({parent});
    repo.true_ops.push_back(op);
  }
  for (int v = 0; v < n; ++v) {
    repo.versions.push_back({"v" + std::to_string(v), repo.tables[v].get(),
                             timestamps ? static_cast<double>(v) : -1.0});
  }
  return repo;
}

void Run(int argc, char** argv) {
  int scale = ParseScale(argc, argv);

  // Edge inference quality: sweep repository size and edit rate.
  TablePrinter edges({"versions", "edits/commit", "timestamps", "precision",
                      "recall", "time"});
  for (int n : {20 * scale, 50 * scale}) {
    for (int edits : {5, 20, 60}) {
      for (bool ts : {true, false}) {
        Repo repo = MakeRepo(n, edits, ts, 7 + edits);
        Timer t;
        InferredGraph g = InferLineage(repo.versions);
        double secs = t.ElapsedSeconds();
        EdgeQuality q = ScoreEdges(g, repo.true_parents);
        edges.AddRow({StrFormat("%d", n), StrFormat("%d", edits),
                      ts ? "yes" : "no", StrFormat("%.2f", q.precision),
                      StrFormat("%.2f", q.recall), HumanSeconds(secs)});
      }
    }
  }
  std::cout << "\n=== Sec. 8.8: inferred lineage edge quality ===\n";
  edges.Print(std::cout);

  // Structural explanation accuracy over true parent/child pairs.
  TablePrinter ops({"operation", "pairs", "correctly explained"});
  std::map<Operation, std::pair<int, int>> tally;
  Repo repo = MakeRepo(60 * scale, 15, true, 99);
  for (int v = 1; v < static_cast<int>(repo.versions.size()); ++v) {
    int parent = repo.true_parents[v][0];
    Explanation ex =
        ExplainDerivation(*repo.tables[parent], *repo.tables[v], "id");
    auto& [total, correct] = tally[repo.true_ops[v]];
    ++total;
    if (ex.op == repo.true_ops[v]) ++correct;
  }
  for (const auto& [op, counts] : tally) {
    ops.AddRow({OperationName(op), StrFormat("%d", counts.first),
                StrFormat("%d (%.0f%%)", counts.second,
                          100.0 * counts.second /
                              std::max(1, counts.first))});
  }
  std::cout << "\n=== Sec. 8.8: structural explanation accuracy ===\n";
  ops.Print(std::cout);

  // Workflow acceleration (Sec. 8.6): LSH candidate pruning vs the
  // exhaustive all-pairs comparison.
  TablePrinter lsh({"versions", "exhaustive", "LSH", "speedup",
                    "precision (exh/LSH)"});
  for (int n : {100, 200, 400}) {
    Repo repo = MakeRepo(n * scale, 15, true, 3);
    InferenceOptions exhaustive;
    Timer t1;
    InferredGraph g1 = InferLineage(repo.versions, exhaustive);
    double exh_s = t1.ElapsedSeconds();
    InferenceOptions fast;
    fast.use_lsh = true;
    Timer t2;
    InferredGraph g2 = InferLineage(repo.versions, fast);
    double lsh_s = t2.ElapsedSeconds();
    EdgeQuality q1 = ScoreEdges(g1, repo.true_parents);
    EdgeQuality q2 = ScoreEdges(g2, repo.true_parents);
    lsh.AddRow({StrFormat("%d", n * scale), HumanSeconds(exh_s),
                HumanSeconds(lsh_s), StrFormat("%.1fx", exh_s / lsh_s),
                StrFormat("%.2f / %.2f", q1.precision, q2.precision)});
  }
  std::cout << "\n=== Sec. 8.6: accelerating the workflow (LSH candidate "
               "pruning) ===\n";
  lsh.Print(std::cout);
}

}  // namespace
}  // namespace orpheus::bench

int main(int argc, char** argv) {
  orpheus::bench::MaybeStartTrace(argc, argv);
  orpheus::bench::Run(argc, argv);
  orpheus::bench::ExportMetrics(argc, argv);
  orpheus::bench::ExportTrace(argc, argv);
}
