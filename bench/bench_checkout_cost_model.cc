// Reproduces Figure 5.7 (checkout cost model validation, Sec. 5.5.5):
// checkout time vs number of records in the partition |R_k|, for
// hash-join, merge-join and index-nested-loop-join, with the data table
// physically clustered on rid or on the relation primary key.
//
// Expected shape: hash-join grows linearly in |R_k| regardless of layout;
// merge-join is linear when clustered on rid and pays a sort otherwise;
// index-nested-loop is flat in |R_k| for small |rlist| (point lookups) and
// converges to the scan behaviour as |rlist| approaches |R_k|.

#include <algorithm>
#include <iostream>
#include <thread>

#include "bench/bench_util.h"
#include "common/ridset.h"
#include "common/thread_pool.h"
#include "minidb/join.h"

namespace orpheus::bench {
namespace {

using minidb::JoinAlgorithm;
using minidb::Table;

constexpr int kAttrs = 20;

Table BuildDataTable(int64_t rows, bool clustered_on_rid, uint64_t seed) {
  std::vector<minidb::ColumnDef> cols = {{"_rid", minidb::ValueType::kInt64}};
  for (int a = 0; a < kAttrs; ++a) {
    cols.push_back({StrFormat("a%d", a), minidb::ValueType::kInt64});
  }
  Table t("data", minidb::Schema(std::move(cols)));
  Xorshift rng(seed);
  std::vector<int64_t> row(kAttrs + 1);
  for (int64_t r = 0; r < rows; ++r) {
    row[0] = r;
    for (int a = 1; a <= kAttrs; ++a) {
      row[a] = static_cast<int64_t>(rng.Next() % 1000000);
    }
    t.AppendIntRowUnchecked(row);
  }
  if (!clustered_on_rid) {
    // Re-cluster on the "primary key" (first payload attribute): rids end
    // up scattered, like a table clustered on <protein1, protein2>.
    t.SortByIntColumn(1);
  }
  Status s = t.BuildUniqueIntIndex(0);
  if (!s.ok()) {
    std::cerr << s.ToString() << "\n";
    std::exit(1);
  }
  return t;
}

double TimeCheckout(const Table& data, const std::vector<int64_t>& rlist,
                    JoinAlgorithm algo, bool clustered) {
  // A checkout = join rids against the data table, then materialize.
  Timer timer;
  auto rows = minidb::JoinRids(data, 0, rlist, algo, clustered);
  Table result = data.CopyRows(rows, "checkout");
  double elapsed = timer.ElapsedSeconds();
  if (result.num_rows() != rlist.size()) {
    std::cerr << "join lost rows\n";
    std::exit(1);
  }
  return elapsed;
}

void Run(int argc, char** argv) {
  int scale = ParseScale(argc, argv);
  std::vector<int64_t> rk_sizes = {125000, 250000, 500000, 1000000};
  std::vector<int64_t> rlist_sizes = {1000, 10000, 50000, 125000};
  for (auto& v : rk_sizes) v *= scale;
  for (auto& v : rlist_sizes) v *= scale;

  struct Variant {
    JoinAlgorithm algo;
    bool clustered;
    const char* figure;
  };
  const Variant kVariants[] = {
      {JoinAlgorithm::kHashJoin, true, "5.7(a) hash-join (clustered on rid)"},
      {JoinAlgorithm::kMergeJoin, true, "5.7(b) merge-join (clustered on rid)"},
      {JoinAlgorithm::kIndexNestedLoop, true,
       "5.7(c) index-nested-loop-join (clustered on rid)"},
      {JoinAlgorithm::kHashJoin, false, "5.7(d) hash-join (clustered on PK)"},
      {JoinAlgorithm::kMergeJoin, false,
       "5.7(e) merge-join (clustered on PK)"},
      {JoinAlgorithm::kIndexNestedLoop, false,
       "5.7(f) index-nested-loop-join (clustered on PK)"},
  };

  // Pre-build the largest tables once per clustering mode.
  for (bool clustered : {true, false}) {
    std::vector<Table> tables;
    for (int64_t rk : rk_sizes) {
      std::cerr << "building data table |Rk|=" << rk
                << (clustered ? " (rid-clustered)" : " (PK-clustered)")
                << "\n";
      tables.push_back(BuildDataTable(rk, clustered, 17));
    }
    for (const auto& variant : kVariants) {
      if (variant.clustered != clustered) continue;
      std::vector<std::string> header = {"|Rk|"};
      for (int64_t rl : rlist_sizes) {
        header.push_back(StrFormat("|rlist|=%lldK",
                                   static_cast<long long>(rl / 1000)));
      }
      TablePrinter table(header);
      for (size_t i = 0; i < rk_sizes.size(); ++i) {
        std::vector<std::string> row = {
            StrFormat("%.2fM", rk_sizes[i] / 1e6)};
        for (int64_t rl : rlist_sizes) {
          if (rl > rk_sizes[i]) {
            row.push_back("-");
            continue;
          }
          Xorshift rng(41);
          auto sample = rng.SampleWithoutReplacement(
              static_cast<uint64_t>(rk_sizes[i]), static_cast<uint64_t>(rl));
          std::vector<int64_t> rlist(sample.begin(), sample.end());
          std::sort(rlist.begin(), rlist.end());
          row.push_back(HumanSeconds(
              TimeCheckout(tables[i], rlist, variant.algo, clustered)));
        }
        table.AddRow(row);
      }
      std::cout << "\n=== Figure " << variant.figure << " ===\n";
      table.Print(std::cout);
    }
  }

  // Thread-scaling section: the hash-join probe and the materialization
  // copy both fan out across the pool, so the same checkout is timed at
  // degree 1 and degree N (outputs are byte-identical — see
  // test_determinism).
  const int n_threads = std::max(
      2, static_cast<int>(std::thread::hardware_concurrency()));
  const int64_t rk = rk_sizes.back();
  std::cerr << "building data table |Rk|=" << rk
            << " (rid-clustered, thread scaling)\n";
  Table data = BuildDataTable(rk, /*clustered_on_rid=*/true, 17);
  TablePrinter scaling({"|rlist|", "threads=1",
                        StrFormat("threads=%d", n_threads), "speedup"});
  for (int64_t rl : rlist_sizes) {
    Xorshift rng(41);
    auto sample = rng.SampleWithoutReplacement(static_cast<uint64_t>(rk),
                                               static_cast<uint64_t>(rl));
    std::vector<int64_t> rlist(sample.begin(), sample.end());
    std::sort(rlist.begin(), rlist.end());
    double secs[2];
    for (int mode = 0; mode < 2; ++mode) {
      ThreadPool::Global().SetDegree(mode == 0 ? 1 : n_threads);
      secs[mode] =
          TimeCheckout(data, rlist, JoinAlgorithm::kHashJoin, true);
    }
    ThreadPool::Global().SetDegree(1);
    scaling.AddRow({StrFormat("%lldK", static_cast<long long>(rl / 1000)),
                    HumanSeconds(secs[0]), HumanSeconds(secs[1]),
                    StrFormat("%.2fx", secs[0] / std::max(1e-9, secs[1]))});
  }
  std::cout << "\n=== Hash-join checkout, threads=1 vs threads=" << n_threads
            << " (|Rk|=" << StrFormat("%.2fM", rk / 1e6) << ") ===\n";
  scaling.Print(std::cout);

  // Compressed membership index: the same checkout with the rlist held as
  // a plain i64 vector (ORPHEUS_RIDSET=0 behaviour: hash join) vs as a
  // compressed RidSet probed in place (ORPHEUS_RIDSET=1 behaviour:
  // container-at-a-time IntersectToRows), one binary. Production builds
  // the set once at commit time, so construction stays outside the timer.
  ThreadPool::Global().SetDegree(n_threads);
  auto median3 = [](auto&& fn) {
    double a = fn();
    double b = fn();
    double c = fn();
    return std::max(std::min(a, b), std::min(std::max(a, b), c));
  };
  TablePrinter ridset_table(
      {"|rlist|", "plain rlist (off)", "ridset (on)", "speedup"});
  for (int64_t rl : rlist_sizes) {
    Xorshift rng(41);
    auto sample = rng.SampleWithoutReplacement(static_cast<uint64_t>(rk),
                                               static_cast<uint64_t>(rl));
    std::vector<int64_t> rlist(sample.begin(), sample.end());
    std::sort(rlist.begin(), rlist.end());
    const RidSet set = RidSet::FromSorted(rlist);
    double off_secs = median3([&]() {
      return TimeCheckout(data, rlist, JoinAlgorithm::kHashJoin, true);
    });
    double on_secs = median3([&]() {
      Timer timer;
      auto rows = minidb::JoinRidSet(data, 0, set, /*clustered_on_rid=*/true);
      Table result = data.CopyRows(rows, "checkout");
      double elapsed = timer.ElapsedSeconds();
      if (result.num_rows() != rlist.size()) {
        std::cerr << "ridset join lost rows\n";
        std::exit(1);
      }
      return elapsed;
    });
    double speedup = off_secs / std::max(1e-9, on_secs);
    ridset_table.AddRow({StrFormat("%lldK", static_cast<long long>(rl / 1000)),
                         HumanSeconds(off_secs), HumanSeconds(on_secs),
                         StrFormat("%.2fx", speedup)});
    // Dynamic names: direct registry handles instead of the literal-name
    // macros.
    auto& reg = MetricsRegistry::Global();
    const std::string prefix =
        StrFormat("bench.ridset.checkout.rl%lldk",
                  static_cast<long long>(rl / 1000));
    reg.gauge(prefix + ".off_us").Set(static_cast<int64_t>(off_secs * 1e6));
    reg.gauge(prefix + ".on_us").Set(static_cast<int64_t>(on_secs * 1e6));
    reg.gauge(prefix + ".speedup_x100")
        .Set(static_cast<int64_t>(speedup * 100));
  }
  std::cout << "\n=== Checkout with compressed membership index "
               "(ORPHEUS_RIDSET off vs on, |Rk|="
            << StrFormat("%.2fM", rk / 1e6) << ", rid-clustered) ===\n";
  ridset_table.Print(std::cout);
}

}  // namespace
}  // namespace orpheus::bench

int main(int argc, char** argv) {
  orpheus::bench::MaybeStartTrace(argc, argv);
  orpheus::bench::Run(argc, argv);
  orpheus::bench::ExportMetrics(argc, argv);
  orpheus::bench::ExportTrace(argc, argv);
}
