// Reproduces the Chapter 7 evaluation (Sec. 7.5): the storage-cost vs
// recreation-cost trade-off on versioned file repositories, across the
// three scenarios of Table 7.1, plus algorithm running times and the
// optimality gap against the exact (ILP-equivalent) solver on small
// instances.
//
// Expected shape: the minimum spanning tree/arborescence anchors the
// storage axis and the shortest-path tree the recreation axis; LMG and MP
// trace the frontier between them (LMG optimizes the sum, MP the max);
// LAST obeys its (alpha, 1 + 2/(alpha-1)) guarantee in the undirected
// Phi = Delta scenario.

#include <iostream>

#include "bench/bench_util.h"
#include "deltastore/algorithms.h"
#include "deltastore/dedup.h"
#include "deltastore/exact.h"
#include "deltastore/repository.h"

namespace orpheus::bench {
namespace {

using namespace orpheus::deltastore;  // NOLINT

void FrontierSection(const char* title, const FileRepository& repo,
                     bool undirected, PhiModel phi) {
  StorageGraph graph = repo.BuildStorageGraph(undirected, phi, 2);
  TablePrinter table({"solution", "total storage", "sum recreation",
                      "max recreation", "materialized"});
  auto add = [&](const std::string& name, const StorageSolution& sol) {
    auto costs = EvaluateSolution(graph, sol);
    if (!costs.ok()) {
      std::cerr << costs.status().ToString() << "\n";
      std::exit(1);
    }
    int materialized = 0;
    for (int p : sol.parent) {
      if (p == StorageGraph::kDummy) ++materialized;
    }
    table.AddRow({name, HumanBytes(static_cast<uint64_t>(costs->total_storage)),
                  HumanBytes(static_cast<uint64_t>(costs->sum_recreation)),
                  HumanBytes(static_cast<uint64_t>(costs->max_recreation)),
                  StrFormat("%d", materialized)});
  };

  StorageSolution mst = undirected ? MinimumStorageTree(graph)
                                   : MinimumStorageArborescence(graph);
  auto mst_costs = EvaluateSolution(graph, mst);
  StorageSolution spt = ShortestPathTree(graph);
  auto spt_costs = EvaluateSolution(graph, spt);
  add("MST/MCA (Problem 7.1)", mst);
  add("SPT (Problem 7.2)", spt);
  for (double beta_factor : {1.25, 1.5, 2.0, 3.0}) {
    double beta = beta_factor * mst_costs->total_storage;
    add(StrFormat("LMG beta=%.2f*MST (Problem 7.3)", beta_factor),
        LmgWithStorageBudget(graph, beta));
  }
  for (double theta_factor : {1.25, 1.5, 2.0}) {
    double theta = theta_factor * spt_costs->max_recreation;
    add(StrFormat("MP theta=%.2f*SPTmax (Problem 7.6)", theta_factor),
        MpWithRecreationThreshold(graph, theta));
  }
  if (undirected && phi == PhiModel::kProportional) {
    for (double alpha : {1.5, 2.0, 3.0}) {
      add(StrFormat("LAST alpha=%.1f", alpha), LastTree(graph, alpha));
    }
  }
  std::cout << "\n=== " << title << " ===\n";
  table.Print(std::cout);
}

// The deduplicating-archive baseline of the related work (Venti-style):
// good storage, but recreation always reads the full version and there is
// no knob to trade between the two.
void DedupBaselineSection(const FileRepository& repo) {
  DedupStore store;
  double sum_recreation = 0.0;
  double max_recreation = 0.0;
  for (int v = 0; v < repo.num_versions(); ++v) {
    store.AddVersion(repo.file(v));
  }
  for (int v = 0; v < repo.num_versions(); ++v) {
    double r = store.RecreationCost(v);
    sum_recreation += r;
    max_recreation = std::max(max_recreation, r);
  }
  TablePrinter table({"baseline", "total storage", "sum recreation",
                      "max recreation", "unique chunks"});
  table.AddRow({"chunk-dedup archive", HumanBytes(store.StorageBytes()),
                HumanBytes(static_cast<uint64_t>(sum_recreation)),
                HumanBytes(static_cast<uint64_t>(max_recreation)),
                StrFormat("%zu", store.num_unique_chunks())});
  std::cout << "\n=== Related-work baseline: deduplication archive ===\n";
  table.Print(std::cout);
}

void RuntimeSection(int scale) {
  TablePrinter table({"versions", "deltas", "MST", "Edmonds", "SPT",
                      "LMG(2xMST)", "MP(1.5xSPT)"});
  for (int n : {50, 100, 200}) {
    FileRepository::Config cfg;
    cfg.num_versions = n * scale;
    cfg.base_lines = 300;
    cfg.edits_per_version = 30;
    FileRepository repo = FileRepository::Generate(cfg);
    StorageGraph g =
        repo.BuildStorageGraph(false, PhiModel::kProportional, 2);
    Timer t1;
    auto mst = MinimumStorageTree(g);
    double mst_s = t1.ElapsedSeconds();
    Timer t2;
    auto arb = MinimumStorageArborescence(g);
    double arb_s = t2.ElapsedSeconds();
    Timer t3;
    auto spt = ShortestPathTree(g);
    double spt_s = t3.ElapsedSeconds();
    auto mst_costs = EvaluateSolution(g, arb);
    auto spt_costs = EvaluateSolution(g, spt);
    Timer t4;
    LmgWithStorageBudget(g, 2 * mst_costs->total_storage);
    double lmg_s = t4.ElapsedSeconds();
    Timer t5;
    MpWithRecreationThreshold(g, 1.5 * spt_costs->max_recreation);
    double mp_s = t5.ElapsedSeconds();
    (void)mst;
    table.AddRow({StrFormat("%d", cfg.num_versions),
                  StrFormat("%zu", g.num_deltas()), HumanSeconds(mst_s),
                  HumanSeconds(arb_s), HumanSeconds(spt_s),
                  HumanSeconds(lmg_s), HumanSeconds(mp_s)});
  }
  std::cout << "\n=== Sec. 7.5: algorithm running times ===\n";
  table.Print(std::cout);
}

void OptimalityGapSection() {
  // Small instances where the exact branch-and-bound (the ILP stand-in of
  // Sec. 7.2.3) is tractable.
  TablePrinter table({"instance", "exact sumR", "LMG sumR", "LMG gap",
                      "exact storage", "MP storage", "MP gap"});
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    FileRepository::Config cfg;
    cfg.num_versions = 8;
    cfg.base_lines = 120;
    cfg.edits_per_version = 25;
    cfg.seed = seed;
    FileRepository repo = FileRepository::Generate(cfg);
    StorageGraph g =
        repo.BuildStorageGraph(false, PhiModel::kProportional, 2);
    auto mst_costs = EvaluateSolution(g, MinimumStorageArborescence(g));
    double beta = 1.5 * mst_costs->total_storage;
    auto exact3 = ExactMinSumRecreationStorageBudget(g, beta);
    auto lmg = EvaluateSolution(g, LmgWithStorageBudget(g, beta));
    auto spt_costs = EvaluateSolution(g, ShortestPathTree(g));
    double theta = 1.5 * spt_costs->max_recreation;
    auto exact6 = ExactMinStorageMaxRecreation(g, theta);
    auto mp = EvaluateSolution(g, MpWithRecreationThreshold(g, theta));
    if (!exact3 || !exact6) continue;
    auto e3 = EvaluateSolution(g, *exact3);
    auto e6 = EvaluateSolution(g, *exact6);
    table.AddRow(
        {StrFormat("n=8 seed=%llu", static_cast<unsigned long long>(seed)),
         StrFormat("%.0f", e3->sum_recreation),
         StrFormat("%.0f", lmg->sum_recreation),
         StrFormat("%.2fx", lmg->sum_recreation / e3->sum_recreation),
         StrFormat("%.0f", e6->total_storage),
         StrFormat("%.0f", mp->total_storage),
         StrFormat("%.2fx", mp->total_storage / e6->total_storage)});
  }
  std::cout << "\n=== Sec. 7.5: optimality gap vs exact solver "
               "(small instances) ===\n";
  table.Print(std::cout);
}

void Run(int argc, char** argv) {
  int scale = ParseScale(argc, argv);
  FileRepository::Config cfg;
  cfg.num_versions = 120 * scale;
  cfg.base_lines = 500;
  cfg.edits_per_version = 50;

  std::cerr << "generating file repository (tree)...\n";
  FileRepository tree_repo = FileRepository::Generate(cfg);
  cfg.curated = true;
  cfg.seed = 43;
  std::cerr << "generating file repository (DAG)...\n";
  FileRepository dag_repo = FileRepository::Generate(cfg);

  FrontierSection(
      "Scenario 7.1 (undirected, Phi = Delta), tree repository",
      tree_repo, /*undirected=*/true, PhiModel::kProportional);
  FrontierSection(
      "Scenario 7.2 (directed, Phi = Delta), tree repository",
      tree_repo, /*undirected=*/false, PhiModel::kProportional);
  FrontierSection(
      "Scenario 7.3 (directed, Phi != Delta), tree repository",
      tree_repo, /*undirected=*/false, PhiModel::kOutputBytes);
  FrontierSection(
      "Scenario 7.2 (directed, Phi = Delta), DAG repository",
      dag_repo, /*undirected=*/false, PhiModel::kProportional);

  DedupBaselineSection(tree_repo);
  RuntimeSection(scale);
  OptimalityGapSection();
}

}  // namespace
}  // namespace orpheus::bench

int main(int argc, char** argv) {
  orpheus::bench::MaybeStartTrace(argc, argv);
  orpheus::bench::Run(argc, argv);
  orpheus::bench::ExportMetrics(argc, argv);
  orpheus::bench::ExportTrace(argc, argv);
}
