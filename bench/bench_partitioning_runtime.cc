// Reproduces Figures 5.10 and 5.12: running time of the partitioning
// algorithms when solving Problem 5.1 (minimize checkout cost under the
// storage threshold gamma = 2|R|) — total binary-search time and time per
// search iteration, for LyreSplit vs Agglo vs KMeans.
//
// Expected shape: LyreSplit is orders of magnitude faster than both
// baselines (it touches only the version graph, never the bipartite
// graph); KMeans is the slowest and hits the cutoff on larger datasets.

#include <iostream>
#include <thread>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/baselines.h"
#include "core/lyresplit.h"

namespace orpheus::bench {
namespace {

// Thread-scaling section: materialize the store and migrate it at degree 1
// and degree N and report both, plus the engine's own stage breakdown.
void RunThreadScaling(int scale) {
  const int n_threads = std::max(
      2, static_cast<int>(std::thread::hardware_concurrency()));
  TablePrinter table({"dataset", "stage", "threads=1",
                      StrFormat("threads=%d", n_threads), "speedup"});
  for (const auto& named : Table52Configs(scale, /*include_large=*/false)) {
    if (named.paper_name != "SCI_1M" && named.paper_name != "CUR_1M") continue;
    std::cerr << "generating " << named.paper_name << " (thread scaling)...\n";
    auto ds = benchdata::VersionedDataset::Generate(named.config);
    auto graph = GraphOf(ds);
    auto accessor = AccessorOf(ds);
    uint64_t gamma = 2ull * static_cast<uint64_t>(ds.num_distinct_records());
    core::Partitioning plan =
        core::LyreSplitForBudget(graph, gamma).partitioning;
    core::Partitioning single =
        core::Partitioning::SinglePartition(ds.num_versions());

    double build_s[2];
    double migrate_s[2];
    for (int mode = 0; mode < 2; ++mode) {
      ThreadPool::Global().SetDegree(mode == 0 ? 1 : n_threads);
      Timer build_timer;
      auto store = core::PartitionedStore::Build(accessor, single);
      build_s[mode] = build_timer.ElapsedSeconds();
      Timer migrate_timer;
      store.MigrateTo(accessor, plan, /*intelligent=*/true);
      migrate_s[mode] = migrate_timer.ElapsedSeconds();
    }
    ThreadPool::Global().SetDegree(1);
    table.AddRow({named.paper_name, "build", HumanSeconds(build_s[0]),
                  HumanSeconds(build_s[1]),
                  StrFormat("%.2fx", build_s[0] / std::max(1e-9, build_s[1]))});
    table.AddRow({named.paper_name, "migrate", HumanSeconds(migrate_s[0]),
                  HumanSeconds(migrate_s[1]),
                  StrFormat("%.2fx",
                            migrate_s[0] / std::max(1e-9, migrate_s[1]))});
  }
  std::cout << "\n=== Parallel execution: partition store build/migrate, "
               "threads=1 vs threads="
            << n_threads << " ===\n";
  table.Print(std::cout);

  TablePrinter stages({"stage", "total", "self", "calls", "p95"});
  const auto snap = MetricsRegistry::Global().TakeSnapshot();
  for (const auto& s : snap.spans) {
    stages.AddRow({s.path, HumanSeconds(s.total_us * 1e-6),
                   HumanSeconds(s.self_us * 1e-6),
                   StrFormat("%llu", static_cast<unsigned long long>(s.count)),
                   HumanSeconds(s.latency_us.p95 * 1e-6)});
  }
  std::cout << "\n=== Engine stage breakdown (both runs) ===\n";
  stages.Print(std::cout);
}

void Run(int argc, char** argv) {
  int scale = ParseScale(argc, argv);
  bool quick = HasFlag(argc, argv, "--quick");

  TablePrinter total({"dataset", "LyreSplit", "Agglo", "KMeans"});
  TablePrinter per_iter({"dataset", "LyreSplit", "Agglo", "KMeans"});

  for (const auto& named : Table52Configs(scale)) {
    if (named.paper_name == "SCI_2M" || named.paper_name == "SCI_8M") continue;
    std::cerr << "generating " << named.paper_name << "...\n";
    auto ds = benchdata::VersionedDataset::Generate(named.config);
    auto graph = GraphOf(ds);
    auto view = ViewOf(ds);
    uint64_t gamma = 2ull * static_cast<uint64_t>(ds.num_distinct_records());

    Timer lyre_timer;
    auto lyre = core::LyreSplitForBudget(graph, gamma);
    double lyre_total = lyre_timer.ElapsedSeconds();
    double lyre_iter = lyre_total / std::max(1, lyre.search_iterations);

    bool agglo_cut = ds.num_bipartite_edges() > 12u * 1000 * 1000;
    double agglo_total = 0.0;
    double agglo_iter = 0.0;
    if (!agglo_cut) {
      Timer agglo_timer;
      int agglo_iters = 0;
      core::AggloForBudget(view, gamma, &agglo_iters);
      agglo_total = agglo_timer.ElapsedSeconds();
      agglo_iter = agglo_total / std::max(1, agglo_iters);
    }

    // KMeans mirrors the paper's 10-hour cutoff: skip it on the largest
    // inputs (where the paper also reports "cutoff").
    bool kmeans_cut =
        quick || ds.num_bipartite_edges() > 2500u * 1000;
    std::string kmeans_total_s = "cutoff";
    std::string kmeans_iter_s = "cutoff";
    if (!kmeans_cut) {
      Timer kmeans_timer;
      int kmeans_iters = 0;
      core::KmeansForBudget(view, gamma, &kmeans_iters);
      double kmeans_total = kmeans_timer.ElapsedSeconds();
      kmeans_total_s = HumanSeconds(kmeans_total);
      kmeans_iter_s =
          HumanSeconds(kmeans_total / std::max(1, kmeans_iters));
    }

    total.AddRow({named.paper_name, HumanSeconds(lyre_total),
                  agglo_cut ? "cutoff" : HumanSeconds(agglo_total),
                  kmeans_total_s});
    per_iter.AddRow({named.paper_name, HumanSeconds(lyre_iter),
                     agglo_cut ? "cutoff" : HumanSeconds(agglo_iter),
                     kmeans_iter_s});
  }

  std::cout << "\n=== Figures 5.10(a)/5.12(a): total running time "
               "(binary search, gamma = 2|R|) ===\n";
  total.Print(std::cout);
  std::cout << "\n=== Figures 5.10(b)/5.12(b): running time per binary "
               "search iteration ===\n";
  per_iter.Print(std::cout);

  MetricsRegistry::Global().Reset();
  RunThreadScaling(scale);
}

}  // namespace
}  // namespace orpheus::bench

int main(int argc, char** argv) {
  orpheus::bench::MaybeStartTrace(argc, argv);
  orpheus::bench::Run(argc, argv);
  orpheus::bench::ExportMetrics(argc, argv);
  orpheus::bench::ExportTrace(argc, argv);
}
