// Reproduces Figures 5.14 and 5.15: checkout time and storage size with and
// without partitioning, for gamma = 1.5|R| and gamma = 2|R|.
//
// Expected shape: with a <= 2x storage increase, average checkout time
// drops by several-x, and the reduction grows with dataset size (the paper
// reports 3x/10x/21x on SCI and 3x/7x/9x on CUR).

#include <iostream>

#include "bench/bench_util.h"
#include "core/lyresplit.h"

namespace orpheus::bench {
namespace {

void Run(int argc, char** argv) {
  int scale = ParseScale(argc, argv);
  int samples = HasFlag(argc, argv, "--quick") ? 10 : 50;

  TablePrinter checkout({"dataset", "without partitioning",
                         "LyreSplit (g=1.5|R|)", "LyreSplit (g=2|R|)",
                         "speedup @2|R|"});
  TablePrinter storage({"dataset", "without partitioning",
                        "LyreSplit (g=1.5|R|)", "LyreSplit (g=2|R|)"});

  for (const auto& named : Table52Configs(scale)) {
    if (named.paper_name == "SCI_2M" || named.paper_name == "SCI_8M") continue;
    std::cerr << "generating " << named.paper_name << "...\n";
    auto ds = benchdata::VersionedDataset::Generate(named.config);
    auto graph = GraphOf(ds);
    auto accessor = AccessorOf(ds);

    auto whole = core::PartitionedStore::Build(
        accessor, core::Partitioning::SinglePartition(ds.num_versions()));
    double base_secs = AvgCheckoutSeconds(whole, samples);
    uint64_t base_bytes = whole.StorageBytes();

    std::vector<std::string> crow = {named.paper_name,
                                     HumanSeconds(base_secs)};
    std::vector<std::string> srow = {named.paper_name,
                                     HumanBytes(base_bytes)};
    double speedup2 = 0.0;
    for (double factor : {1.5, 2.0}) {
      uint64_t gamma = static_cast<uint64_t>(
          factor * static_cast<double>(ds.num_distinct_records()));
      auto plan = core::LyreSplitForBudget(graph, gamma);
      auto store = core::PartitionedStore::Build(accessor, plan.partitioning);
      double secs = AvgCheckoutSeconds(store, samples);
      crow.push_back(HumanSeconds(secs));
      srow.push_back(HumanBytes(store.StorageBytes()));
      if (factor == 2.0 && secs > 0) speedup2 = base_secs / secs;
    }
    crow.push_back(StrFormat("%.1fx", speedup2));
    checkout.AddRow(crow);
    storage.AddRow(srow);
  }

  std::cout << "\n=== Figures 5.14(a)/5.15(a): checkout time with and "
               "without partitioning ===\n";
  checkout.Print(std::cout);
  std::cout << "\n=== Figures 5.14(b)/5.15(b): storage size ===\n";
  storage.Print(std::cout);
}

}  // namespace
}  // namespace orpheus::bench

int main(int argc, char** argv) {
  orpheus::bench::MaybeStartTrace(argc, argv);
  orpheus::bench::Run(argc, argv);
  orpheus::bench::ExportMetrics(argc, argv);
  orpheus::bench::ExportTrace(argc, argv);
}
