// Ablation benches for the design choices called out in DESIGN.md:
//  (1) the checkout join strategy for split-by-rlist (Sec. 5.5.5 concluded
//      hash-join is the right default);
//  (2) delta-based vs split-by-rlist commit cost as the modification
//      fraction grows (Sec. 4.2's 8.16s-vs-4.12s observation);
//  (3) delta-based storage under delete-heavy workloads (Sec. 4.2: deleted
//      records are repeated in deltas, split models don't repeat them);
//  (4) LyreSplit's DAG tree-reduction pessimism: estimated (with R̂
//      duplicates) vs exact storage after post-processing (Sec. 5.3.1).

#include <iostream>
#include <memory>
#include <unordered_set>

#include "bench/bench_util.h"
#include "core/data_models.h"
#include "core/lyresplit.h"

namespace orpheus::bench {
namespace {

using core::DataModelBackend;
using core::DataModelType;
using core::NewRecord;
using core::RecordId;
using core::SplitByRlistBackend;

minidb::Schema AttrSchema(int num_attributes) {
  std::vector<minidb::ColumnDef> cols;
  for (int a = 0; a < num_attributes; ++a) {
    cols.push_back({StrFormat("a%d", a), minidb::ValueType::kInt64});
  }
  return minidb::Schema(std::move(cols));
}

std::unique_ptr<DataModelBackend> BuildBackend(
    DataModelType type, const benchdata::VersionedDataset& ds) {
  auto backend =
      DataModelBackend::Create(type, AttrSchema(ds.num_attributes()));
  std::vector<char> seen(ds.num_distinct_records(), 0);
  for (int v = 0; v < ds.num_versions(); ++v) {
    const auto& spec = ds.version(v);
    std::vector<NewRecord> fresh;
    for (RecordId rid : spec.records) {
      if (!seen[rid]) {
        seen[rid] = 1;
        minidb::Row row;
        for (int64_t x : ds.RecordPayload(rid)) row.emplace_back(x);
        fresh.push_back({rid, std::move(row)});
      }
    }
    Status s = backend->AddVersion(v, spec.records, fresh, spec.parents);
    if (!s.ok()) {
      std::cerr << s.ToString() << "\n";
      std::exit(1);
    }
  }
  return backend;
}

void JoinStrategyAblation(int scale) {
  auto ds = benchdata::VersionedDataset::Generate(
      benchdata::SciConfig("SCI_JOIN", 800, 80, 100 * scale));
  auto backend = BuildBackend(DataModelType::kSplitByRlist, ds);
  auto* rlist = static_cast<SplitByRlistBackend*>(backend.get());
  TablePrinter table({"join strategy", "checkout time (latest version)"});
  for (auto algo : {minidb::JoinAlgorithm::kHashJoin,
                    minidb::JoinAlgorithm::kMergeJoin,
                    minidb::JoinAlgorithm::kIndexNestedLoop}) {
    rlist->set_join_algorithm(algo);
    Timer t;
    auto out = backend->Checkout(ds.num_versions() - 1, "t");
    double secs = t.ElapsedSeconds();
    if (!out.ok()) {
      std::cerr << out.status().ToString() << "\n";
      std::exit(1);
    }
    table.AddRow({minidb::JoinAlgorithmName(algo), HumanSeconds(secs)});
  }
  std::cout << "\n=== Ablation 1: split-by-rlist checkout join strategy ===\n";
  table.Print(std::cout);
}

void ModifiedCommitSweep(int scale) {
  auto ds = benchdata::VersionedDataset::Generate(
      benchdata::SciConfig("SCI_MODSWEEP", 400, 40, 25 * scale));
  TablePrinter table({"modified fraction", "delta-based commit",
                      "split-by-rlist commit"});
  for (double frac : {0.0, 0.1, 0.3, 0.5}) {
    std::vector<std::string> row = {StrFormat("%.0f%%", frac * 100)};
    for (auto type :
         {DataModelType::kDeltaBased, DataModelType::kSplitByRlist}) {
      auto backend = BuildBackend(type, ds);
      const int latest = ds.num_versions() - 1;
      std::vector<RecordId> rids = ds.version(latest).records;
      Xorshift rng(3);
      std::vector<NewRecord> fresh;
      RecordId next = ds.num_distinct_records();
      for (auto& rid : rids) {
        if (rng.NextDouble() < frac) {
          RecordId src = rid;
          rid = next++;
          minidb::Row payload;
          for (int64_t x : ds.RecordPayload(src)) payload.emplace_back(x);
          fresh.push_back({rid, std::move(payload)});
        }
      }
      std::sort(rids.begin(), rids.end());
      std::sort(fresh.begin(), fresh.end(),
                [](const NewRecord& a, const NewRecord& b) {
                  return a.rid < b.rid;
                });
      Timer t;
      Status s =
          backend->AddVersion(ds.num_versions(), rids, fresh, {latest});
      double secs = t.ElapsedSeconds();
      if (!s.ok()) {
        std::cerr << s.ToString() << "\n";
        std::exit(1);
      }
      row.push_back(HumanSeconds(secs));
    }
    table.AddRow(row);
  }
  std::cout << "\n=== Ablation 2: commit cost vs modification fraction ===\n";
  table.Print(std::cout);
}

void DeleteHeavyStorage(int scale) {
  // The delta model repeats records when versions diverge and re-merge
  // (the non-base parent's records re-enter the delta), and when deleted
  // records resurface; sweep from a linear SCI history to a merge-heavy
  // CUR history with growing delete rates.
  TablePrinter table({"workload", "delta-based storage",
                      "split-by-rlist storage", "ratio"});
  struct Case {
    const char* label;
    bool curated;
    double delete_frac;
  };
  const Case kCases[] = {
      {"SCI, deletes=5%", false, 0.05},
      {"SCI, deletes=30%", false, 0.3},
      {"CUR (merges), deletes=5%", true, 0.05},
      {"CUR (merges), deletes=30%", true, 0.3},
  };
  for (const Case& c : kCases) {
    benchdata::GeneratorConfig cfg =
        c.curated ? benchdata::CurConfig("DEL", 300, 30, 20 * scale)
                  : benchdata::SciConfig("DEL", 300, 30, 20 * scale);
    cfg.base_multiplier = 10;
    cfg.merge_prob = 0.4;
    cfg.delete_frac = c.delete_frac;
    cfg.insert_frac = c.delete_frac;  // keep sizes roughly stable
    cfg.update_frac = 1.0 - 2 * c.delete_frac;
    auto ds = benchdata::VersionedDataset::Generate(cfg);
    auto delta = BuildBackend(DataModelType::kDeltaBased, ds);
    auto rlist = BuildBackend(DataModelType::kSplitByRlist, ds);
    double ratio = static_cast<double>(delta->StorageBytes()) /
                   static_cast<double>(rlist->StorageBytes());
    table.AddRow({c.label, HumanBytes(delta->StorageBytes()),
                  HumanBytes(rlist->StorageBytes()),
                  StrFormat("%.2f", ratio)});
  }
  std::cout << "\n=== Ablation 3: delta-based storage under merge/delete "
               "heavy workloads ===\n";
  table.Print(std::cout);
}

void DagReductionPessimism(int scale) {
  TablePrinter table({"dataset", "estimated storage (with R^)",
                      "exact storage (collapsed)", "overestimate"});
  for (const char* name : {"CUR_1M", "CUR_5M"}) {
    auto cfg = benchdata::CurConfig(
        name, 1100, 100, (std::string(name) == "CUR_1M" ? 13 : 66) * scale);
    auto ds = benchdata::VersionedDataset::Generate(cfg);
    auto graph = GraphOf(ds);
    auto view = ViewOf(ds);
    auto r = core::LyreSplitWithDelta(graph, 0.3);
    auto exact = core::ComputeExactCosts(view, r.partitioning);
    table.AddRow(
        {name, StrFormat("%.2fM", r.estimated.storage / 1e6),
         StrFormat("%.2fM", exact.storage / 1e6),
         StrFormat("%.1f%%", 100.0 * (static_cast<double>(r.estimated.storage) -
                                      static_cast<double>(exact.storage)) /
                                 static_cast<double>(exact.storage))});
  }
  std::cout << "\n=== Ablation 4: DAG tree-reduction estimate vs exact "
               "storage (Sec. 5.3.1) ===\n";
  table.Print(std::cout);
}

// Sec. 5.3.2: workload-aware (weighted) partitioning vs the uniform
// objective when recent versions are checked out far more often.
void WeightedCheckoutAblation(int scale) {
  auto ds = benchdata::VersionedDataset::Generate(
      benchdata::SciConfig("SCI_W", 300, 30, 20 * scale));
  auto graph = GraphOf(ds);
  auto view = ViewOf(ds);
  std::vector<int64_t> freq(ds.num_versions(), 1);
  for (int v = ds.num_versions() - 30; v < ds.num_versions(); ++v) {
    freq[v] = 20;  // the most recent versions dominate the workload
  }
  auto weighted_cost = [&](const core::Partitioning& p) {
    auto per = core::PerVersionCheckoutCost(view, p);
    double num = 0;
    double den = 0;
    for (size_t i = 0; i < per.size(); ++i) {
      num += static_cast<double>(freq[i]) * static_cast<double>(per[i]);
      den += static_cast<double>(freq[i]);
    }
    return num / den;
  };
  TablePrinter table({"objective", "partitions", "weighted checkout cost",
                      "storage (records)"});
  for (double delta : {0.3, 0.5}) {
    auto plain = core::LyreSplitWithDelta(graph, delta);
    auto weighted = core::LyreSplitWeighted(graph, freq, delta);
    auto pc = core::ComputeExactCosts(view, plain.partitioning);
    auto wc = core::ComputeExactCosts(view, weighted.partitioning);
    table.AddRow({StrFormat("uniform (d=%.1f)", delta),
                  StrFormat("%d", plain.partitioning.num_partitions),
                  StrFormat("%.0f", weighted_cost(plain.partitioning)),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        pc.storage))});
    table.AddRow({StrFormat("weighted (d=%.1f)", delta),
                  StrFormat("%d", weighted.partitioning.num_partitions),
                  StrFormat("%.0f", weighted_cost(weighted.partitioning)),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        wc.storage))});
  }
  std::cout << "\n=== Ablation 5: workload-aware partitioning "
               "(Sec. 5.3.2) ===\n";
  table.Print(std::cout);
}

void Run(int argc, char** argv) {
  int scale = ParseScale(argc, argv);
  JoinStrategyAblation(scale);
  ModifiedCommitSweep(scale);
  DeleteHeavyStorage(scale);
  DagReductionPessimism(scale);
  WeightedCheckoutAblation(scale);
}

}  // namespace
}  // namespace orpheus::bench

int main(int argc, char** argv) {
  orpheus::bench::MaybeStartTrace(argc, argv);
  orpheus::bench::Run(argc, argv);
  orpheus::bench::ExportMetrics(argc, argv);
  orpheus::bench::ExportTrace(argc, argv);
}
