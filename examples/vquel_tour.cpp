// A tour of VQuel (Chapter 6): the generalized query language over
// versions, data, and provenance. Builds the genome-assembly-style
// collaborative store of Sec. 6.1 and runs the chapter's queries.
//
// Build & run:  ./build/examples/vquel_tour

#include <iostream>

#include "vquel/evaluator.h"
#include "vquel/store.h"

using namespace orpheus::vquel;  // NOLINT
using orpheus::minidb::Value;

namespace {

VersionStore::Record Read(int64_t id, const std::string& sample,
                          const std::string& tool, int64_t n50) {
  VersionStore::Record r;
  r.id = id;
  r.fields["sample"] = Value(sample);
  r.fields["tool"] = Value(tool);
  r.fields["n50"] = Value(n50);
  return r;
}

}  // namespace

int main() {
  // Three researchers iterate on genome assemblies: an initial import, a
  // re-assembly with a different tool, and a merged "best of" selection.
  VersionStore store;

  VersionStore::Version v1;
  v1.commit_id = "v01";
  v1.commit_msg = "initial SOAPdenovo assemblies";
  v1.creation_ts = 10;
  v1.author_name = "Ana";
  v1.relations.push_back({"Assembly", false,
                          {Read(1, "s1", "SOAPdenovo", 21000),
                           Read(2, "s2", "SOAPdenovo", 18000),
                           Read(3, "s3", "SOAPdenovo", 25000)}});
  store.AddVersion(v1);

  VersionStore::Version v2;
  v2.commit_id = "v02";
  v2.commit_msg = "rerun s2 with ABySS";
  v2.creation_ts = 20;
  v2.author_name = "Ben";
  v2.parents = {0};
  VersionStore::Record s2b = Read(4, "s2", "ABySS", 30500);
  s2b.parents = {2};  // derived from the SOAPdenovo attempt
  v2.relations.push_back({"Assembly", false,
                          {Read(1, "s1", "SOAPdenovo", 21000), s2b,
                           Read(3, "s3", "SOAPdenovo", 25000)}});
  store.AddVersion(v2);

  VersionStore::Version v3;
  v3.commit_id = "v03";
  v3.commit_msg = "quast QC pass, drop s3";
  v3.creation_ts = 30;
  v3.author_name = "Ana";
  v3.parents = {1};
  v3.relations.push_back({"Assembly", false,
                          {Read(1, "s1", "SOAPdenovo", 21000),
                           Read(4, "s2", "ABySS", 30500)}});
  store.AddVersion(v3);

  Session session(&store);
  auto run = [&session](const char* label, const std::string& program) {
    std::cout << "\n--- " << label << " ---\n" << program << "\n";
    auto results = session.Execute(program);
    if (!results.ok()) {
      std::cerr << "error: " << results.status().ToString() << "\n";
      std::exit(1);
    }
    const QueryResult& r = results->back();
    for (const auto& col : r.columns) std::cout << col << "\t";
    std::cout << "\n";
    for (const auto& row : r.rows) {
      for (const auto& v : row) std::cout << v.ToString() << "\t";
      std::cout << "\n";
    }
  };

  run("who authored v02 (Query 6.1)", R"(
      range of V is Version
      retrieve V.author.name where V.id = "v02")");

  run("Ana's commits after ts 15 (Query 6.2)", R"(
      range of V is Version
      retrieve V.id, V.commit_msg
      where V.author.name = "Ana" and V.creation_ts >= 15)");

  run("history of sample s2 (Query 6.5)", R"(
      range of V is Version
      range of R is V.Relations
      range of E is R.Tuples
      retrieve V.id, E.tool, E.n50
      where E.sample = "s2" and R.name = "Assembly"
      sort by V.creation_ts)");

  run("versions with exactly one ABySS assembly (Query 6.8)", R"(
      range of V is Version
      range of E is V.Relations(name = "Assembly").Tuples
      retrieve V.id
      where count(E.sample where E.tool = "ABySS") = 1)");

  run("best assembly per version via retrieve into (Query 6.11)", R"(
      range of V is Version
      range of E is V.Relations(name = "Assembly").Tuples
      retrieve into Best (V.id as id, max(E.n50) as best_n50)
      range of B is Best
      retrieve B.id, B.best_n50 where B.best_n50 = max(B.best_n50))");

  run("ancestors of v03 (graph traversal, Sec. 6.3.4)", R"(
      range of V is Version(id = "v03")
      range of P is V.P()
      retrieve P.id sort by P.id)");

  run("record-level provenance of the ABySS rerun (Query 6.16)", R"(
      range of E is Version(id = "v02").Relations(name = "Assembly").Tuples
      range of PR is E.parents
      retrieve E.id, E.tool, PR.id, PR.tool
      where E.sample = "s2")");

  return 0;
}
