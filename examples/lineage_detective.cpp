// The Chapter 8 provenance manager: a shared folder full of dataset
// versions with no metadata ("dataset_v1.csv", "dataset_final_FINAL.csv"
// ...). The inference engine reconstructs who derived what from what, and
// the structural explainer names the operation behind each edge.
//
// Build & run:  ./build/examples/lineage_detective

#include <iostream>
#include <memory>

#include "common/random.h"
#include "provenance/explanation.h"
#include "provenance/inference.h"

using namespace orpheus;              // NOLINT
using namespace orpheus::provenance;  // NOLINT
using minidb::Row;
using minidb::Schema;
using minidb::Table;
using minidb::Value;
using minidb::ValueType;

int main() {
  Xorshift rng(2024);

  // The original survey data.
  auto base = std::make_unique<Table>(
      "survey_raw", Schema({{"respondent", ValueType::kInt64},
                            {"country", ValueType::kString},
                            {"income", ValueType::kInt64},
                            {"notes", ValueType::kString}}));
  for (int i = 0; i < 500; ++i) {
    base->AppendRowUnchecked(
        {Value(static_cast<int64_t>(i)),
         Value("country" + std::to_string(rng.Uniform(12))),
         Value(static_cast<int64_t>(rng.Uniform(90000))),
         Value("note" + std::to_string(rng.Uniform(1000)))});
  }

  // Derivations the team never registered anywhere:
  // cleaned = update of some income outliers (row-preserving? updates)
  auto cleaned = std::make_unique<Table>(base->Clone("survey_cleaned"));
  for (uint32_t r = 0; r < 25; ++r) {
    Row row = cleaned->GetRow(r * 7);
    row[2] = Value(int64_t{45000});
    cleaned->SetRow(r * 7, row);
  }
  // anonymized = projection dropping the notes column
  std::vector<uint32_t> all(cleaned->num_rows());
  for (uint32_t r = 0; r < cleaned->num_rows(); ++r) all[r] = r;
  auto anonymized = std::make_unique<Table>(
      cleaned->ProjectRows(all, {0, 1, 2}, "survey_anonymized"));
  // high_income = selection on the anonymized data
  std::vector<uint32_t> rich;
  for (uint32_t r = 0; r < anonymized->num_rows(); ++r) {
    if (anonymized->column(2).GetInt(r) >= 60000) rich.push_back(r);
  }
  auto high_income = std::make_unique<Table>(
      anonymized->CopyRows(rich, "survey_high_income"));
  // extended = the cleaned data plus a new batch of respondents
  auto extended = std::make_unique<Table>(cleaned->Clone("survey_extended"));
  for (int i = 0; i < 40; ++i) {
    extended->AppendRowUnchecked(
        {Value(static_cast<int64_t>(9000 + i)), Value("country3"),
         Value(static_cast<int64_t>(rng.Uniform(90000))), Value("batch2")});
  }

  std::vector<DatasetVersion> folder = {
      {"survey_raw.csv", base.get(), 1.0},
      {"survey_cleaned.csv", cleaned.get(), 2.0},
      {"survey_anonymized.csv", anonymized.get(), 3.0},
      {"survey_high_income.csv", high_income.get(), 4.0},
      {"survey_extended.csv", extended.get(), 5.0},
  };

  std::cout << "shared folder contents (no metadata registered):\n";
  for (const auto& v : folder) {
    std::cout << "  " << v.name << "  (" << v.table->num_rows() << " rows, "
              << v.table->num_columns() << " cols)\n";
  }

  InferredGraph graph = InferLineage(folder);

  std::cout << "\ninferred lineage:\n";
  for (size_t v = 0; v < folder.size(); ++v) {
    if (graph.parent[v] < 0) {
      std::cout << "  " << folder[v].name << "  <- (root)\n";
      continue;
    }
    const auto& parent = folder[graph.parent[v]];
    Explanation ex =
        ExplainDerivation(*parent.table, *folder[v].table, "respondent");
    std::cout << "  " << folder[v].name << "  <-  " << parent.name
              << "   [" << OperationName(ex.op) << ": +" << ex.rows_added
              << " rows, -" << ex.rows_removed << " rows";
    if (!ex.columns_removed.empty()) {
      std::cout << ", dropped " << ex.columns_removed[0];
    }
    if (ex.rows_modified > 0) std::cout << ", ~" << ex.rows_modified
                                        << " updated";
    std::cout << "]\n";
  }
  return 0;
}
