// The paper's running example (Fig. 3.2): a protein-protein interaction
// dataset curated by a biology group. Demonstrates schema evolution during
// commits (Sec. 4.3) — a type widening (cooccurrence integer -> decimal)
// and a new coexpression attribute — plus the version-graph functional
// primitives (ancestor/descendant, v_diff, v_intersect).
//
// Build & run:  ./build/examples/protein_analysis

#include <iostream>

#include "core/cvd.h"
#include "core/query.h"
#include "minidb/database.h"

using orpheus::core::Cvd;
using orpheus::minidb::Database;
using orpheus::minidb::Row;
using orpheus::minidb::Schema;
using orpheus::minidb::Table;
using orpheus::minidb::Value;
using orpheus::minidb::ValueType;

namespace {

void Check(const orpheus::Status& s, const char* what) {
  if (!s.ok()) {
    std::cerr << what << ": " << s.ToString() << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  // v1: the initial interaction table (protein pair, neighborhood,
  // cooccurrence) — Fig. 4.3's starting schema.
  Table interactions("interaction",
                     Schema({{"protein1", ValueType::kString},
                             {"protein2", ValueType::kString},
                             {"neighborhood", ValueType::kInt64},
                             {"cooccurrence", ValueType::kInt64}}));
  auto add = [&interactions](const char* p1, const char* p2, int64_t nb,
                             int64_t co) {
    Check(interactions.InsertRow(
              {Value(p1), Value(p2), Value(nb), Value(co)}),
          "insert");
  };
  add("ENSP273047", "ENSP261890", 0, 53);
  add("ENSP273047", "ENSP235932", 0, 87);
  add("ENSP300413", "ENSP274242", 426, 0);
  add("ENSP309334", "ENSP346022", 0, 227);

  Cvd::Options options;
  options.primary_key = {"protein1", "protein2"};
  auto cvd_result = Cvd::Init("Interaction", interactions, options);
  Check(cvd_result.status(), "init");
  Cvd& cvd = **cvd_result;

  Database staging;

  // v2: a collaborator re-normalizes cooccurrence to a decimal score —
  // the attribute is widened (integer -> double, a new attribute-table
  // entry, Fig. 4.3).
  Check(cvd.Checkout({1}, "norm", &staging), "checkout");
  Table* norm = staging.GetTable("norm");
  Check(norm->WidenColumn(4, ValueType::kDouble), "widen");
  for (uint32_t r = 0; r < norm->num_rows(); ++r) {
    Row row = norm->GetRow(r);
    row[4] = Value(row[4].NumericValue() / 1000.0);
    norm->SetRow(r, row);
  }
  auto v2 = cvd.Commit("norm", &staging, "normalize cooccurrence", "bolin");
  Check(v2.status(), "commit v2");

  // v3: another collaborator, working from v1, adds a coexpression
  // attribute — the CVD schema grows, old records read NULL.
  Check(cvd.Checkout({1}, "coexp", &staging), "checkout");
  Table* coexp = staging.GetTable("coexp");
  Check(coexp->AddColumn({"coexpression", ValueType::kInt64}), "add column");
  for (uint32_t r = 0; r < coexp->num_rows(); ++r) {
    Row row = coexp->GetRow(r);
    row[5] = Value(static_cast<int64_t>(80 + 7 * r));
    coexp->SetRow(r, row);
  }
  auto v3 = cvd.Commit("coexp", &staging, "add coexpression", "silu");
  Check(v3.status(), "commit v3");

  // v4: merge the two branches — v2's normalized values win PK conflicts,
  // and the schema is the union of both parents (Fig. 4.3's v4).
  Check(cvd.Checkout({*v2, *v3}, "merge", &staging), "merge checkout");
  auto v4 = cvd.Commit("merge", &staging, "merge normalization + coexpression",
                       "silu");
  Check(v4.status(), "commit v4");

  std::cout << "version graph:\n";
  for (const auto& meta : cvd.metadata()) {
    std::cout << "  v" << meta.vid << " (" << meta.author << ") \""
              << meta.message << "\" parents:";
    for (auto p : meta.parents) std::cout << " v" << p;
    std::cout << " records: " << meta.num_records << " attrs: [";
    for (size_t i = 0; i < meta.attributes.size(); ++i) {
      if (i) std::cout << ",";
      std::cout << "a" << meta.attributes[i];
    }
    std::cout << "]\n";
  }

  std::cout << "\nattribute table (Fig. 4.3b):\n";
  for (const auto& attr : cvd.attribute_table()) {
    std::cout << "  a" << attr.attr_id << "  " << attr.name << "  "
              << orpheus::minidb::ValueTypeName(attr.type) << "\n";
  }

  // Version-graph primitives (Sec. 3.3.2).
  std::cout << "\nancestors(v4):";
  for (auto a : cvd.Ancestors(*v4)) std::cout << " v" << a;
  auto common = cvd.VIntersect({*v2, *v3});
  Check(common.status(), "v_intersect");
  std::cout << "\n|v_intersect(v2, v3)| = " << common->size();
  auto only_v3 = cvd.VDiff(*v3, *v2);
  Check(only_v3.status(), "v_diff");
  std::cout << "\n|v_diff(v3, v2)| = " << only_v3->size() << "\n";

  // The paper's Sec. 3.3.2 query, on the evolved schema.
  auto q = orpheus::core::RunQuery(
      cvd, "SELECT protein1, protein2, coexpression FROM VERSION 3, 4 OF "
           "CVD Interaction WHERE coexpression > 80 LIMIT 50");
  Check(q.status(), "query");
  std::cout << "\ninteractions with coexpression > 80 in v3, v4: "
            << q->num_rows() << " rows\n";
  return 0;
}
