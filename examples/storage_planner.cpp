// The Chapter 7 compact storage engine in action: a repository of versioned
// files (any format — here line-oriented text) gets a storage plan that
// balances total storage against recreation cost, and every version is
// recreated bit-exactly from the plan.
//
// Build & run:  ./build/examples/storage_planner

#include <iostream>

#include "common/string_util.h"
#include "deltastore/algorithms.h"
#include "deltastore/repository.h"

using namespace orpheus;             // NOLINT
using namespace orpheus::deltastore; // NOLINT

namespace {

void Report(const char* name, const StorageGraph& graph,
            const StorageSolution& sol) {
  auto costs = EvaluateSolution(graph, sol);
  if (!costs.ok()) {
    std::cerr << costs.status().ToString() << "\n";
    std::exit(1);
  }
  int materialized = 0;
  for (int p : sol.parent) {
    if (p == StorageGraph::kDummy) ++materialized;
  }
  std::cout << StrFormat(
      "%-28s storage %-10s sumR %-10s maxR %-10s (%d materialized)\n", name,
      HumanBytes(static_cast<uint64_t>(costs->total_storage)).c_str(),
      HumanBytes(static_cast<uint64_t>(costs->sum_recreation)).c_str(),
      HumanBytes(static_cast<uint64_t>(costs->max_recreation)).c_str(),
      materialized);
}

}  // namespace

int main() {
  // 60 versions of a dataset file, edited along a branching history.
  FileRepository::Config cfg;
  cfg.num_versions = 60;
  cfg.base_lines = 800;
  cfg.edits_per_version = 60;
  FileRepository repo = FileRepository::Generate(cfg);

  uint64_t full = 0;
  for (int v = 0; v < repo.num_versions(); ++v) {
    full += repo.file(v).SizeBytes();
  }
  std::cout << "repository: " << repo.num_versions() << " versions, "
            << HumanBytes(full) << " if every version is stored in full\n\n";

  // Reveal actual computed deltas along version-graph edges plus a few
  // extra sampled pairs.
  StorageGraph graph =
      repo.BuildStorageGraph(/*undirected=*/false, PhiModel::kProportional,
                             /*extra_pairs=*/2);

  // The two extremes and the frontier algorithms between them.
  StorageSolution mca = MinimumStorageArborescence(graph);
  StorageSolution spt = ShortestPathTree(graph);
  Report("min storage (Problem 7.1)", graph, mca);
  Report("min recreation (Problem 7.2)", graph, spt);

  auto mca_costs = EvaluateSolution(graph, mca);
  StorageSolution lmg =
      LmgWithStorageBudget(graph, 2.0 * mca_costs->total_storage);
  Report("LMG, beta = 2x min storage", graph, lmg);

  auto spt_costs = EvaluateSolution(graph, spt);
  StorageSolution mp =
      MpWithRecreationThreshold(graph, 1.5 * spt_costs->max_recreation);
  Report("MP, theta = 1.5x SPT maxR", graph, mp);

  // Prove the plan is sound: recreate several versions from the LMG plan
  // and compare against the originals.
  std::cout << "\nverifying recreation from the LMG plan:\n";
  for (int v : {0, 15, 37, repo.num_versions() - 1}) {
    auto content = repo.Materialize(lmg, v);
    if (!content.ok()) {
      std::cerr << content.status().ToString() << "\n";
      return 1;
    }
    bool exact = *content == repo.file(v);
    std::cout << "  version " << v << ": "
              << (exact ? "bit-exact" : "MISMATCH") << " ("
              << content->lines.size() << " lines)\n";
    if (!exact) return 1;
  }
  std::cout << "\nall versions recreatable; plan storage is "
            << StrFormat("%.1f%%",
                         100.0 *
                             EvaluateSolution(graph, lmg)->total_storage /
                             static_cast<double>(full))
            << " of full materialization\n";
  return 0;
}
