// A data science team at work: hundreds of versions stream into a CVD-style
// store while the partition optimizer (Chapter 5) keeps checkouts fast.
// Shows LyreSplit planning, the physical partitioned store, online
// maintenance as commits arrive, and a migration when the tolerance factor
// is exceeded.
//
// Build & run:  ./build/examples/team_workflow

#include <iostream>

#include "benchdata/generator.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/lyresplit.h"
#include "core/online.h"
#include "core/partition_store.h"

using namespace orpheus;         // NOLINT
using namespace orpheus::core;   // NOLINT

int main() {
  // Simulate the team's history: 400 versions, 40 branches, ~30 edits per
  // commit (the SCI pattern of Sec. 5.5.1).
  auto ds = benchdata::VersionedDataset::Generate(
      benchdata::SciConfig("team", 400, 40, 30));
  std::cout << "history: " << ds.num_versions() << " versions, "
            << ds.num_distinct_records() << " distinct records, "
            << ds.num_bipartite_edges() << " version-record memberships\n";

  // Build the version graph the optimizer reasons about.
  VersionGraph graph;
  for (int v = 0; v < ds.num_versions(); ++v) {
    const auto& spec = ds.version(v);
    std::vector<int64_t> w;
    for (int p : spec.parents) w.push_back(ds.CommonRecords(p, v));
    graph.AddVersion(spec.parents, w,
                     static_cast<int64_t>(spec.records.size()));
  }

  DatasetAccessor accessor;
  accessor.num_versions = ds.num_versions();
  accessor.num_attributes = ds.num_attributes();
  accessor.records_of = [&ds](int v) -> const std::vector<RecordId>& {
    return ds.version(v).records;
  };
  accessor.payload_of = [&ds](RecordId rid, std::vector<int64_t>* out) {
    *out = ds.RecordPayload(rid);
  };

  // Without partitioning: one big split-by-rlist pair of tables.
  auto whole = PartitionedStore::Build(
      accessor, Partitioning::SinglePartition(ds.num_versions()));
  Timer t0;
  auto co = whole.Checkout(ds.num_versions() - 1);
  double unpartitioned = t0.ElapsedSeconds();
  std::cout << "\nunpartitioned checkout of the latest version: "
            << HumanSeconds(unpartitioned) << " (scans "
            << whole.PartitionRecords(ds.num_versions() - 1)
            << " records)\n";
  if (!co.ok()) return 1;

  // LyreSplit with a 2x storage budget.
  uint64_t gamma = 2ull * static_cast<uint64_t>(ds.num_distinct_records());
  auto plan = LyreSplitForBudget(graph, gamma);
  std::cout << "LyreSplit: delta=" << StrFormat("%.3f", plan.delta) << ", "
            << plan.partitioning.num_partitions << " partitions, estimated "
            << plan.estimated.storage << " stored records\n";

  auto store = PartitionedStore::Build(accessor, plan.partitioning);
  Timer t1;
  auto co2 = store.Checkout(ds.num_versions() - 1);
  double partitioned = t1.ElapsedSeconds();
  if (!co2.ok()) return 1;
  std::cout << "partitioned checkout of the same version: "
            << HumanSeconds(partitioned) << " (scans "
            << store.PartitionRecords(ds.num_versions() - 1)
            << " records) — " << StrFormat("%.1fx", unpartitioned /
                                                        partitioned)
            << " faster\n";

  // Online phase: 100 more commits stream in; the maintainer places each
  // one and watches the divergence from LyreSplit's best plan.
  auto more = benchdata::VersionedDataset::Generate(
      benchdata::SciConfig("team", 500, 50, 30));
  VersionGraph live_graph;
  OnlineMaintainer::Options opt;
  opt.mu = 1.5;
  opt.replan_every = 10;
  OnlineMaintainer maint(&live_graph, opt);
  for (int v = 0; v < 400; ++v) {
    const auto& spec = more.version(v);
    std::vector<int64_t> w;
    for (int p : spec.parents) w.push_back(more.CommonRecords(p, v));
    live_graph.AddVersion(spec.parents, w,
                          static_cast<int64_t>(spec.records.size()));
  }
  maint.Bootstrap(LyreSplitForBudget(
      live_graph, 2ull * static_cast<uint64_t>(more.num_distinct_records())));

  int migrations = 0;
  for (int v = 400; v < more.num_versions(); ++v) {
    const auto& spec = more.version(v);
    std::vector<int64_t> w;
    for (int p : spec.parents) w.push_back(more.CommonRecords(p, v));
    live_graph.AddVersion(spec.parents, w,
                          static_cast<int64_t>(spec.records.size()));
    bool migrate = false;
    maint.OnCommit(v, &migrate);
    if (migrate) {
      std::cout << "  commit " << v + 1 << ": C_avg "
                << StrFormat("%.0f", maint.current_checkout_cost())
                << " > mu * C*_avg "
                << StrFormat("%.0f", opt.mu * maint.best_checkout_cost())
                << " -> migration triggered\n";
      maint.OnMigrated();
      ++migrations;
    }
  }
  std::cout << "\nonline phase: 100 commits placed, " << migrations
            << " migration(s); final C_avg "
            << StrFormat("%.0f", maint.current_checkout_cost())
            << " vs best " << StrFormat("%.0f", maint.best_checkout_cost())
            << "\n";
  return 0;
}
