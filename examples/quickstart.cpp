// Quickstart: the OrpheusDB workflow in ten minutes.
//
// Creates a CVD from a table, checks out a working copy, edits it, commits
// a new version, branches, merges with primary-key precedence, diffs, and
// runs versioned SQL — everything Sec. 3.3 describes.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "core/cvd.h"
#include "core/query.h"
#include "minidb/database.h"

using orpheus::core::Cvd;
using orpheus::core::VersionId;
using orpheus::minidb::Database;
using orpheus::minidb::Row;
using orpheus::minidb::Schema;
using orpheus::minidb::Table;
using orpheus::minidb::Value;
using orpheus::minidb::ValueType;

namespace {

void Check(const orpheus::Status& s, const char* what) {
  if (!s.ok()) {
    std::cerr << what << " failed: " << s.ToString() << "\n";
    std::exit(1);
  }
}

void PrintTable(const Table& t) {
  for (size_t c = 0; c < t.num_columns(); ++c) {
    std::cout << t.schema().column(c).name << "\t";
  }
  std::cout << "\n";
  for (uint32_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      std::cout << t.GetValue(r, c).ToString() << "\t";
    }
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  // 1. `init`: register an existing table as a CVD. The table's rows become
  //    version 1.
  Table wines("wines", Schema({{"name", ValueType::kString},
                               {"region", ValueType::kString},
                               {"score", ValueType::kInt64}}));
  Check(wines.InsertRow({Value("Barolo"), Value("Piedmont"),
                         Value(int64_t{94})}),
        "insert");
  Check(wines.InsertRow({Value("Rioja"), Value("La Rioja"),
                         Value(int64_t{90})}),
        "insert");
  Check(wines.InsertRow({Value("Chablis"), Value("Burgundy"),
                         Value(int64_t{88})}),
        "insert");

  Cvd::Options options;
  options.primary_key = {"name"};
  auto cvd_result = Cvd::Init("Wines", wines, options);
  Check(cvd_result.status(), "init");
  Cvd& cvd = **cvd_result;
  std::cout << "initialized CVD '" << cvd.name() << "' at version "
            << cvd.latest() << "\n";

  // 2. `checkout -v 1 -t my_work`: materialize a private working copy.
  Database staging;
  Check(cvd.Checkout({1}, "my_work", &staging), "checkout");
  Table* work = staging.GetTable("my_work");

  // 3. Edit the working copy with ordinary table operations: bump a score
  //    and add a new wine. (The _rid column is OrpheusDB's internal record
  //    identity; leave it NULL for new rows.)
  Row row = work->GetRow(0);
  row[3] = Value(int64_t{97});  // Barolo gets re-scored
  work->SetRow(0, row);
  work->AppendRowUnchecked({Value::Null(), Value("Assyrtiko"),
                            Value("Santorini"), Value(int64_t{91})});

  // 4. `commit -t my_work -m "..."`: the new version becomes visible.
  auto v2 = cvd.Commit("my_work", &staging, "re-score Barolo; add Assyrtiko",
                       "alice");
  Check(v2.status(), "commit");
  std::cout << "committed version " << *v2 << "\n";

  // 5. Branch from version 1 in parallel (a second collaborator).
  Check(cvd.Checkout({1}, "bob_work", &staging), "checkout");
  Table* bob = staging.GetTable("bob_work");
  Row bob_row = bob->GetRow(0);
  bob_row[3] = Value(int64_t{92});  // Bob disagrees about Barolo
  bob->SetRow(0, bob_row);
  auto v3 = cvd.Commit("bob_work", &staging, "Bob's Barolo take", "bob");
  Check(v3.status(), "commit");

  // 6. Merge: checkout both branches; version 2 (listed first) wins the
  //    primary-key conflict on Barolo (precedence order, Sec. 3.3.1).
  Check(cvd.Checkout({*v2, *v3}, "merged", &staging), "merge checkout");
  auto v4 = cvd.Commit("merged", &staging, "merge alice + bob", "alice");
  Check(v4.status(), "merge commit");
  std::cout << "merged into version " << *v4 << " (parents:";
  for (VersionId p : cvd.Parents(*v4)) std::cout << " " << p;
  std::cout << ")\n";

  // 7. `diff`: what does v4 have that v1 does not?
  auto diff = cvd.Diff(*v4, 1);
  Check(diff.status(), "diff");
  std::cout << "\nrecords in v" << *v4 << " but not v1:\n";
  PrintTable(*diff);

  // 8. Versioned SQL without materializing anything (Sec. 3.3.2).
  auto query = orpheus::core::RunQuery(
      cvd, "SELECT name, score FROM VERSION 1, 4 OF CVD Wines "
           "WHERE score >= 92");
  Check(query.status(), "query");
  std::cout << "\nSELECT name, score FROM VERSION 1, 4 OF CVD Wines "
               "WHERE score >= 92:\n";
  PrintTable(*query);

  // 9. Aggregate across every version.
  auto agg = orpheus::core::RunQuery(
      cvd, "SELECT vid, AVG(score) FROM CVD Wines GROUP BY vid");
  Check(agg.status(), "aggregate");
  std::cout << "\naverage score per version:\n";
  PrintTable(*agg);

  std::cout << "\nCVD storage: " << cvd.StorageBytes() << " bytes across "
            << cvd.num_versions() << " versions\n";
  return 0;
}
